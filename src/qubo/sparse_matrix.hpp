// CSR (compressed sparse row) form of a QUBO weight matrix W.
//
// G-set-style instances have rows with ~10 nonzeros out of thousands, yet
// the dense Δ-repair of Eq. (16) walks the whole row on every flip. The
// sparse kernel walks only a row's stored nonzeros, turning the per-flip
// cost from O(n) into O(degree(k)) matrix reads. Both triangles are stored
// (exactly as the dense WeightMatrix materializes both) so row k is one
// contiguous, ascending-index scan.
//
// A SparseWeightMatrix is immutable once built. It can be derived from an
// existing dense WeightMatrix (the usual path: QuboKernel plans the kernel
// for an instance) or emitted directly by WeightMatrixBuilder::build_sparse
// without ever materializing the n² dense array.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "qubo/types.hpp"

namespace absq {

class WeightMatrix;

class SparseWeightMatrix {
 public:
  SparseWeightMatrix() = default;

  /// CSR of every nonzero of `w` (both triangles, diagonal included).
  explicit SparseWeightMatrix(const WeightMatrix& w);

  /// One (i, j, w) energy term with i ≤ j; the off-diagonal mirror entry is
  /// added implicitly.
  struct Triplet {
    BitIndex i = 0;
    BitIndex j = 0;
    Weight w = 0;
  };

  /// Builds from upper-triangle triplets (i ≤ j, no duplicate (i, j) keys,
  /// zero weights ignored). Used by WeightMatrixBuilder::build_sparse.
  static SparseWeightMatrix from_triplets(BitIndex n,
                                          const std::vector<Triplet>& terms);

  [[nodiscard]] BitIndex size() const { return n_; }

  /// One matrix row: ascending column indices and the matching weights.
  /// This is the whole access pattern of the sparse Δ-repair loop.
  struct Row {
    std::span<const BitIndex> cols;
    std::span<const Weight> weights;

    [[nodiscard]] std::size_t size() const { return cols.size(); }
  };
  [[nodiscard]] Row row(BitIndex k) const {
    const std::size_t begin = row_ptr_[k];
    const std::size_t end = row_ptr_[k + 1];
    return Row{{cols_.data() + begin, end - begin},
               {weights_.data() + begin, end - begin}};
  }

  /// Stored entries per row (the per-flip matrix-read cost of the sparse
  /// kernel for bit k).
  [[nodiscard]] std::size_t degree(BitIndex k) const {
    return row_ptr_[k + 1] - row_ptr_[k];
  }

  /// W_ij by binary search within row i — O(log degree). Convenience for
  /// tests and the diagonal; the kernels never random-access.
  [[nodiscard]] Weight at(BitIndex i, BitIndex j) const;

  /// Total stored entries (both triangles + diagonal).
  [[nodiscard]] std::size_t stored_nonzeros() const { return cols_.size(); }

  /// Stored entries over n² — the kernel-selection statistic.
  [[nodiscard]] double density() const;

  [[nodiscard]] std::size_t max_degree() const;

  /// Memory footprint of the index + weight arrays in bytes.
  [[nodiscard]] std::size_t bytes() const {
    return row_ptr_.size() * sizeof(std::size_t) +
           cols_.size() * sizeof(BitIndex) + weights_.size() * sizeof(Weight);
  }

 private:
  BitIndex n_ = 0;
  std::vector<std::size_t> row_ptr_;  ///< n + 1 offsets into cols_/weights_
  std::vector<BitIndex> cols_;
  std::vector<Weight> weights_;
};

}  // namespace absq
