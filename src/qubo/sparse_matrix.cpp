#include "qubo/sparse_matrix.hpp"

#include <algorithm>

#include "qubo/weight_matrix.hpp"
#include "util/check.hpp"

namespace absq {

SparseWeightMatrix::SparseWeightMatrix(const WeightMatrix& w)
    : n_(w.size()), row_ptr_(static_cast<std::size_t>(w.size()) + 1, 0) {
  std::size_t nnz = 0;
  for (BitIndex i = 0; i < n_; ++i) {
    const auto row = w.row(i);
    std::size_t count = 0;
    for (BitIndex j = 0; j < n_; ++j) {
      if (row[j] != 0) ++count;
    }
    nnz += count;
    row_ptr_[i + 1] = nnz;
  }
  cols_.reserve(nnz);
  weights_.reserve(nnz);
  for (BitIndex i = 0; i < n_; ++i) {
    const auto row = w.row(i);
    for (BitIndex j = 0; j < n_; ++j) {
      if (row[j] != 0) {
        cols_.push_back(j);
        weights_.push_back(row[j]);
      }
    }
  }
}

SparseWeightMatrix SparseWeightMatrix::from_triplets(
    BitIndex n, const std::vector<Triplet>& terms) {
  ABSQ_CHECK(n >= 1 && n <= kMaxBits,
             "instance size " << n << " outside [1, " << kMaxBits << "]");
  SparseWeightMatrix m;
  m.n_ = n;
  m.row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);

  // Two-pass CSR fill: count stored entries per row, prefix-sum, scatter.
  for (const Triplet& t : terms) {
    ABSQ_CHECK(t.i <= t.j && t.j < n,
               "triplet (" << t.i << ", " << t.j
                           << ") must be upper-triangle within size " << n);
    if (t.w == 0) continue;
    ++m.row_ptr_[t.i + 1];
    if (t.i != t.j) ++m.row_ptr_[t.j + 1];
  }
  for (BitIndex i = 0; i < n; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];
  const std::size_t nnz = m.row_ptr_[n];
  m.cols_.resize(nnz);
  m.weights_.resize(nnz);
  std::vector<std::size_t> cursor(m.row_ptr_.begin(), m.row_ptr_.end() - 1);
  for (const Triplet& t : terms) {
    if (t.w == 0) continue;
    m.cols_[cursor[t.i]] = t.j;
    m.weights_[cursor[t.i]++] = t.w;
    if (t.i != t.j) {
      m.cols_[cursor[t.j]] = t.i;
      m.weights_[cursor[t.j]++] = t.w;
    }
  }
  // Scatter order within a row follows the triplet order; the kernels (and
  // at()) rely on ascending columns, so sort each row once.
  for (BitIndex i = 0; i < n; ++i) {
    const std::size_t begin = m.row_ptr_[i];
    const std::size_t end = m.row_ptr_[i + 1];
    std::vector<std::pair<BitIndex, Weight>> entries;
    entries.reserve(end - begin);
    for (std::size_t p = begin; p < end; ++p) {
      entries.emplace_back(m.cols_[p], m.weights_[p]);
    }
    std::sort(entries.begin(), entries.end());
    for (std::size_t p = begin; p < end; ++p) {
      ABSQ_CHECK(p == begin || entries[p - begin].first !=
                                   entries[p - begin - 1].first,
                 "duplicate triplet for entry (" << i << ", "
                                                 << entries[p - begin].first
                                                 << ")");
      m.cols_[p] = entries[p - begin].first;
      m.weights_[p] = entries[p - begin].second;
    }
  }
  return m;
}

Weight SparseWeightMatrix::at(BitIndex i, BitIndex j) const {
  const Row r = row(i);
  const auto it = std::lower_bound(r.cols.begin(), r.cols.end(), j);
  if (it == r.cols.end() || *it != j) return 0;
  return r.weights[static_cast<std::size_t>(it - r.cols.begin())];
}

double SparseWeightMatrix::density() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(stored_nonzeros()) /
         (static_cast<double>(n_) * static_cast<double>(n_));
}

std::size_t SparseWeightMatrix::max_degree() const {
  std::size_t max = 0;
  for (BitIndex i = 0; i < n_; ++i) max = std::max(max, degree(i));
  return max;
}

}  // namespace absq
