// QuboKernel — per-instance flip-kernel plan (form + Δ width selection).
//
// The Δ-update of Eq. (16) is the hot loop of the whole system, and the
// cheapest correct implementation depends on the instance:
//
//   * kSparse      — CSR rows, O(degree) matrix reads per flip plus an
//                    O(degree·log n) tournament-tree repair that keeps the
//                    fused best-neighbour argmin exact. Wins whenever the
//                    matrix is sparse (G-set-style graphs).
//   * kDenseSimd   — contiguous dense row, repair and argmin as separate
//                    vectorizable passes (#pragma omp simd). Wins on dense
//                    instances (synthetic random, TSP permutation QUBOs).
//   * kDenseScalar — the original fused single-pass loop; the reference
//                    the other forms are pinned bit-identical against.
//
// Orthogonally, Δ values are stored 64-bit (always safe: |Δ| < 2^32 for
// in-range instances, see qubo/types.hpp) or — opt-in, QUBO++'s ABS3
// narrow-coefficient mode — 32-bit. Unlike ABS3, whose "overflow checks
// are omitted for performance", the narrow mode here is guarded by a
// one-time worst-case precheck at plan time:
//
//     max_X |Δ_k(X)| = max(W_kk + 2·Σ_{i≠k} max(W_ki, 0),
//                          −W_kk + 2·Σ_{i≠k} max(−W_ki, 0))  =: B_k,
//
// so if max_k B_k fits int32 no reachable Δ (or repair intermediate — each
// repair step lands on a Δ of a reachable state) can overflow; otherwise
// the plan silently falls back to 64-bit. Every form × width combination
// produces bit-identical energies, Δ vectors and flip outcomes — pinned by
// the lockstep property tests — so kernel selection is purely a
// performance decision. docs/kernels.md records selection rules and the
// measured crossover.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "qubo/sparse_matrix.hpp"
#include "qubo/types.hpp"
#include "qubo/weight_matrix.hpp"

namespace absq {

/// Implementation form of the Δ-repair loop.
enum class KernelForm : std::uint8_t {
  kDenseScalar = 0,  ///< original fused single-pass dense loop
  kDenseSimd = 1,    ///< dense two-pass, vectorizable repair + argmin
  kSparse = 2,       ///< CSR rows + tournament tree for the argmin
};

/// Storage width of the Δ vector.
enum class DeltaWidth : std::uint8_t {
  kWide64 = 0,   ///< int64 (always safe)
  kNarrow32 = 1, ///< int32 (opt-in; only when the precheck proves it safe)
};

[[nodiscard]] const char* to_string(KernelForm form);
[[nodiscard]] const char* to_string(DeltaWidth width);

struct KernelOptions {
  enum class Form : std::uint8_t {
    kAuto = 0,    ///< sparse when profitable, dense-SIMD otherwise
    kDense = 1,   ///< force the scalar dense reference kernel
    kDenseSimd = 2,
    kSparse = 3,
  };
  Form form = Form::kAuto;

  /// Opt-in 32-bit Δ mode. Applied only when the worst-case precheck
  /// proves every reachable Δ fits (see QuboKernel::delta_bound); falls
  /// back to 64-bit otherwise.
  bool narrow_delta = false;

  /// Largest |Δ| the narrow mode may represent. The default is the honest
  /// int32 limit; tests lower it to exercise both sides of the precheck
  /// without building 2 GiB instances.
  Energy narrow_limit = std::numeric_limits<std::int32_t>::max();

  /// kAuto picks the sparse form when stored-nonzeros/n² is at or below
  /// this. Default from the measured crossover in EXPERIMENTS.md: with the
  /// early-exit tournament tree the CSR kernel wins ~3× at 1% density
  /// (G22) and loses at 6% (G1), so the break-even sits near 3%.
  double sparse_density_threshold = 0.03125;

  /// kAuto never picks sparse below this size — for tiny instances the
  /// tournament tree costs more than the dense row it replaces.
  BitIndex sparse_min_bits = 64;
};

[[nodiscard]] KernelOptions::Form parse_kernel_form(const std::string& name);

/// The planned kernel for one instance: the dense matrix (always kept —
/// reference energies, baselines and the dense forms read it), the CSR
/// form when the plan selected it, and the chosen form/width. One plan is
/// shared read-only by every search block of a device.
class QuboKernel {
 public:
  /// Plans the kernel. One O(n²) analysis pass (nonzero count + worst-case
  /// Δ bound); builds the CSR form only when selected. `w` must outlive
  /// the kernel.
  explicit QuboKernel(const WeightMatrix& w, const KernelOptions& options = {});

  [[nodiscard]] const WeightMatrix& dense() const { return *w_; }
  /// Non-null exactly when form() == KernelForm::kSparse.
  [[nodiscard]] const SparseWeightMatrix* sparse() const {
    return sparse_.get();
  }

  [[nodiscard]] KernelForm form() const { return form_; }
  [[nodiscard]] DeltaWidth width() const { return width_; }
  [[nodiscard]] const KernelOptions& options() const { return options_; }

  /// max_k B_k — the worst-case |Δ| over every reachable state, the value
  /// the narrow-mode precheck compares against narrow_limit.
  [[nodiscard]] Energy delta_bound() const { return delta_bound_; }

  /// True when narrow_delta was requested but the precheck forced 64-bit.
  [[nodiscard]] bool narrow_fallback() const { return narrow_fallback_; }

  [[nodiscard]] std::size_t stored_nonzeros() const { return nonzeros_; }
  [[nodiscard]] double density() const;

  /// e.g. "sparse/32-bit (density 0.59%, |Δ| ≤ 123456)" — for logs/benches.
  [[nodiscard]] std::string description() const;

  /// The precheck bound max_k B_k (see the file comment) — the exact
  /// maximum of |Δ_k(X)| over every k and X. Exposed for boundary tests.
  [[nodiscard]] static Energy worst_case_delta_bound(const WeightMatrix& w);

 private:
  const WeightMatrix* w_;
  KernelOptions options_;
  std::shared_ptr<const SparseWeightMatrix> sparse_;
  KernelForm form_ = KernelForm::kDenseScalar;
  DeltaWidth width_ = DeltaWidth::kWide64;
  Energy delta_bound_ = 0;
  std::size_t nonzeros_ = 0;
  bool narrow_fallback_ = false;
};

}  // namespace absq
