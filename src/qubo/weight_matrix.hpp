// Dense symmetric weight matrix W of a QUBO instance.
//
// The matrix is stored row-major and fully materialized (both triangles) so
// that the hot loop of the Δ update — a streaming read of row k — is a
// contiguous, prefetch-friendly scan, exactly as the CUDA kernel in the
// paper reads one matrix row per flip from global memory. For n = 32k the
// matrix occupies 2 GiB of int16, matching the paper's memory budget on an
// 11 GB GPU.
//
// Construction paths:
//   * WeightMatrixBuilder — accumulates arbitrary (i, j, w) energy terms
//     sparsely in 64-bit, folds them into a symmetric matrix, and range-
//     checks the final 16-bit weights. All problem converters (Max-Cut,
//     TSP, ...) target the builder so saturation bugs surface at build
//     time, not as silent wrap-around during a search.
//   * WeightMatrix::generate_symmetric — direct dense fill from a callable;
//     used by the synthetic random workload whose n² nonzeros would make
//     sparse accumulation pointless.
#pragma once

#include <concepts>
#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "qubo/types.hpp"

namespace absq {

class SparseWeightMatrix;

class WeightMatrix {
 public:
  WeightMatrix() = default;

  /// An n×n all-zero matrix.
  explicit WeightMatrix(BitIndex n);

  /// Builds a dense symmetric matrix by calling `entry(i, j)` once per
  /// upper-triangle position (i ≤ j) and mirroring the result.
  template <std::invocable<BitIndex, BitIndex> F>
  static WeightMatrix generate_symmetric(BitIndex n, F&& entry) {
    WeightMatrix w(n);
    for (BitIndex i = 0; i < n; ++i) {
      for (BitIndex j = i; j < n; ++j) {
        w.set_symmetric(i, j, static_cast<Weight>(entry(i, j)));
      }
    }
    return w;
  }

  [[nodiscard]] BitIndex size() const { return n_; }

  /// W_ij. Symmetry (W_ij == W_ji) is a class invariant.
  [[nodiscard]] Weight at(BitIndex i, BitIndex j) const {
    return data_[static_cast<std::size_t>(i) * n_ + j];
  }

  /// Contiguous row k — the access pattern of the Δ update loop.
  [[nodiscard]] std::span<const Weight> row(BitIndex k) const {
    return {data_.data() + static_cast<std::size_t>(k) * n_, n_};
  }

  /// The diagonal W_kk, used to initialize Δ_k(0) = W_kk.
  [[nodiscard]] std::vector<Weight> diagonal() const;

  /// Number of nonzero entries in the upper triangle incl. diagonal.
  [[nodiscard]] std::size_t nonzeros() const;

  /// True if W_ij == W_ji for all pairs. Always true for matrices produced
  /// by the builder/factory; exposed for tests.
  [[nodiscard]] bool is_symmetric() const;

  /// Memory footprint of the weight data in bytes.
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(Weight);
  }

  friend bool operator==(const WeightMatrix& a,
                         const WeightMatrix& b) = default;

 private:
  friend class WeightMatrixBuilder;

  void set_symmetric(BitIndex i, BitIndex j, Weight w) {
    data_[static_cast<std::size_t>(i) * n_ + j] = w;
    data_[static_cast<std::size_t>(j) * n_ + i] = w;
  }

  BitIndex n_ = 0;
  std::vector<Weight> data_;
};

/// Accumulating sparse builder; see file comment.
class WeightMatrixBuilder {
 public:
  /// Prepares an n-bit instance. n must be in [1, kMaxBits].
  explicit WeightMatrixBuilder(BitIndex n);

  [[nodiscard]] BitIndex size() const { return n_; }

  /// Adds `w · x_i · x_j` to the energy function (order of i, j irrelevant).
  /// At build time an off-diagonal pair coefficient c is split evenly as
  /// W_ij = W_ji = c/2; if any off-diagonal coefficient is odd, *all*
  /// coefficients are doubled first (a positive rescaling, so the argmin is
  /// unchanged; reported via energy_scale()). Accumulation is 64-bit; the
  /// 16-bit range is enforced at build().
  void add(BitIndex i, BitIndex j, Energy w);

  /// Adds `w` to the linear coefficient of x_i (the diagonal W_ii, since
  /// x_i² = x_i for binary variables).
  void add_linear(BitIndex i, Energy w) { add(i, i, w); }

  /// Largest |accumulated coefficient| so far — converters use this to size
  /// penalty terms before calling build().
  [[nodiscard]] Energy max_abs_coefficient() const;

  /// Validates the 16-bit weight range and produces the symmetric matrix.
  /// Throws CheckError when any resulting weight would fall outside
  /// [kMinWeight, kMaxWeight].
  [[nodiscard]] WeightMatrix build() const;

  /// Like build(), but right-shifts all coefficients by the smallest shift
  /// that brings them into 16-bit range, returning the shift used. Shifting
  /// truncates *toward zero* for both signs (so +c and −c quantize to ±v
  /// with the same magnitude), making this a *lossy quantization*: the
  /// argmin of the scaled instance may differ from the exact one when
  /// coefficients are not divisible — callers must treat decoded energies
  /// as E_true ≈ E_scaled · 2^shift. Used by TSP conversions whose raw
  /// penalties can exceed 16 bits.
  [[nodiscard]] WeightMatrix build_scaled(int* shift_out = nullptr) const;

  /// Builds the CSR form directly from the accumulated terms, without ever
  /// materializing the n² dense array. Same range checks, coefficient
  /// splitting, and energy_scale() contract as build().
  [[nodiscard]] SparseWeightMatrix build_sparse() const;

  /// Factor build() multiplied the energy function by (1 or 2, see add()).
  /// Valid after build().
  [[nodiscard]] int energy_scale() const { return energy_scale_; }

 private:
  /// Packed upper-triangle key for the sparse accumulator.
  [[nodiscard]] std::uint64_t key(BitIndex i, BitIndex j) const;
  [[nodiscard]] bool any_odd_offdiagonal() const;
  /// value / 2^shift, truncated toward zero for both signs.
  [[nodiscard]] static Energy quantize(Energy value, int shift);
  [[nodiscard]] WeightMatrix assemble(Energy scale, int shift) const;

  BitIndex n_;
  std::unordered_map<std::uint64_t, Energy> acc_;
  mutable int energy_scale_ = 1;
};

}  // namespace absq
