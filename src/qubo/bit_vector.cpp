#include "qubo/bit_vector.hpp"

#include <bit>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace absq {

BitVector::BitVector(BitIndex n) : size_(n), words_(word_count(n), 0) {
  ABSQ_CHECK(n <= kMaxBits,
             "bit vector size " << n << " exceeds kMaxBits " << kMaxBits);
}

BitVector BitVector::from_string(const std::string& bits) {
  ABSQ_CHECK(bits.size() <= kMaxBits,
             "bit string length " << bits.size() << " exceeds kMaxBits "
                                  << kMaxBits);
  BitVector v(static_cast<BitIndex>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    ABSQ_CHECK(c == '0' || c == '1',
               "bit string may contain only 0/1, found '" << c << "'");
    if (c == '1') v.set(static_cast<BitIndex>(i), true);
  }
  return v;
}

BitVector BitVector::random(BitIndex n, Rng& rng) {
  BitVector v(n);
  for (auto& word : v.words_) word = rng();
  // Zero the unused tail of the last word to preserve the invariant.
  if (const BitIndex tail = n & 63; tail != 0 && !v.words_.empty()) {
    v.words_.back() &= (1ULL << tail) - 1;
  }
  return v;
}

BitIndex BitVector::popcount() const {
  std::size_t total = 0;
  for (const auto word : words_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return static_cast<BitIndex>(total);
}

BitIndex BitVector::hamming_distance(const BitVector& other) const {
  ABSQ_CHECK(size_ == other.size_, "hamming_distance: size mismatch "
                                       << size_ << " vs " << other.size_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] ^
                                                    other.words_[w]));
  }
  return static_cast<BitIndex>(total);
}

std::vector<BitIndex> BitVector::ones() const {
  std::vector<BitIndex> result;
  result.reserve(popcount());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      result.push_back(static_cast<BitIndex>(w * 64 + static_cast<std::size_t>(bit)));
      word &= word - 1;
    }
  }
  return result;
}

std::vector<BitIndex> BitVector::differing_bits(const BitVector& other) const {
  ABSQ_CHECK(size_ == other.size_, "differing_bits: size mismatch");
  std::vector<BitIndex> result;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w] ^ other.words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      result.push_back(static_cast<BitIndex>(w * 64 + static_cast<std::size_t>(bit)));
      word &= word - 1;
    }
  }
  return result;
}

void BitVector::clear() {
  for (auto& word : words_) word = 0;
}

std::string BitVector::to_string() const {
  std::string out(size_, '0');
  for (BitIndex i = 0; i < size_; ++i) {
    if (get(i) != 0) out[i] = '1';
  }
  return out;
}

std::size_t BitVector::hash() const {
  std::size_t h = 0xcbf29ce484222325ULL ^ size_;
  for (const auto word : words_) {
    h ^= word;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::strong_ordering operator<=>(const BitVector& a, const BitVector& b) {
  if (auto cmp = a.size_ <=> b.size_; cmp != 0) return cmp;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    if (auto cmp = a.words_[w] <=> b.words_[w]; cmp != 0) return cmp;
  }
  return std::strong_ordering::equal;
}

}  // namespace absq
