#include "qubo/delta_state.hpp"

#include "qubo/energy.hpp"
#include "util/check.hpp"

namespace absq {

DeltaState::DeltaState(const WeightMatrix& w)
    : w_(&w),
      x_(w.size()),
      deltas_(w.size()),
      signs_(w.size(), +1),
      energy_(0) {
  // X = 0: E(0) = 0, Δ_i(0) = W_ii.
  for (BitIndex i = 0; i < w.size(); ++i) deltas_[i] = w.at(i, i);
}

DeltaState::DeltaState(const WeightMatrix& w, const BitVector& x)
    : w_(&w), x_(x), deltas_(all_deltas(w, x)), signs_(w.size()) {
  ABSQ_CHECK(w.size() == x.size(), "matrix/vector size mismatch");
  for (BitIndex i = 0; i < w.size(); ++i) {
    signs_[i] = static_cast<std::int8_t>(phi(x.get(i)));
  }
  energy_ = full_energy(w, x);
}

Energy DeltaState::flip(BitIndex k) {
  ABSQ_DCHECK(k < size(), "flip index out of range");
  const auto row = w_->row(k);
  // 2·φ(x_k) before the flip; Eq. (16) applies the pre-flip signs.
  const Energy two_phi_k = 2 * static_cast<Energy>(signs_[k]);
  const Energy old_delta_k = deltas_[k];
  const BitIndex n = size();
  for (BitIndex i = 0; i < n; ++i) {
    deltas_[i] += two_phi_k * signs_[i] * static_cast<Energy>(row[i]);
  }
  // The loop touched i == k with the i ≠ k rule; the k = i case of Eq. (6)
  // is Δ_k ← −Δ_k (pre-flip value), so overwrite it.
  energy_ += old_delta_k;
  deltas_[k] = -old_delta_k;
  signs_[k] = static_cast<std::int8_t>(-signs_[k]);
  x_.flip(k);
  ++flips_;
  return energy_;
}

DeltaState::FlipOutcome DeltaState::flip_tracked(BitIndex k) {
  ABSQ_DCHECK(k < size(), "flip index out of range");
  const auto row = w_->row(k);
  const Energy two_phi_k = 2 * static_cast<Energy>(signs_[k]);
  const Energy old_delta_k = deltas_[k];
  const Energy new_energy = energy_ + old_delta_k;

  // Single fused pass: repair Δ_i and track min_{i≠k} Δ_i(new X).
  Energy best_delta = 0;
  BitIndex best_bit = k;
  bool have_best = false;
  const BitIndex n = size();
  for (BitIndex i = 0; i < n; ++i) {
    const Energy d = deltas_[i] +
                     two_phi_k * signs_[i] * static_cast<Energy>(row[i]);
    deltas_[i] = d;
    if (i != k && (!have_best || d < best_delta)) {
      best_delta = d;
      best_bit = i;
      have_best = true;
    }
  }
  deltas_[k] = -old_delta_k;
  energy_ = new_energy;
  signs_[k] = static_cast<std::int8_t>(-signs_[k]);
  x_.flip(k);
  ++flips_;

  // n == 1 has no neighbour other than k itself; report flipping back.
  if (!have_best) {
    best_delta = deltas_[k];
    best_bit = k;
  }
  return FlipOutcome{new_energy, new_energy + best_delta, best_bit};
}

}  // namespace absq
