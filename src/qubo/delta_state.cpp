#include "qubo/delta_state.hpp"

#include <bit>
#include <limits>

#include "qubo/energy.hpp"
#include "util/check.hpp"

namespace absq {

namespace {

// Repair step d + adj in the Δ storage type. In the 32-bit width the dense
// loops also touch i == k with the i ≠ k rule (branchless, exactly like the
// 64-bit reference); that one transient value can exceed int32 range, so
// the addition runs on uint32 (defined wraparound, identical bits for every
// in-range value) and the k slot is overwritten with −Δ_k right after.
template <class D>
inline D add_repair(D d, int adj) {
  if constexpr (sizeof(D) == sizeof(std::int32_t)) {
    return static_cast<D>(static_cast<std::uint32_t>(d) +
                          static_cast<std::uint32_t>(adj));
  } else {
    return d + adj;
  }
}

constexpr Energy kNoDelta = std::numeric_limits<Energy>::max();

}  // namespace

// ---------------------------------------------------------------------------
// MinTree — leftmost-min tournament tree (sparse form only).

void DeltaState::MinTree::build(const DeltaState& s) {
  n = s.size();
  m = std::bit_ceil(n > 1 ? n : 1);
  nodes.assign(static_cast<std::size_t>(m) * 2, Entry{kNoDelta, n});
  for (BitIndex i = 0; i < n; ++i) nodes[m + i] = Entry{s.delta(i), i};
  for (BitIndex p = m; p-- > 1;) {
    const Entry& a = nodes[2 * p];
    const Entry& b = nodes[2 * p + 1];
    nodes[p] = b.val < a.val ? b : a;
  }
}

void DeltaState::MinTree::update(BitIndex i, Energy v) {
  std::size_t p = static_cast<std::size_t>(m) + i;
  nodes[p].val = v;
  for (p >>= 1; p >= 1; p >>= 1) {
    const Entry& a = nodes[2 * p];
    const Entry& b = nodes[2 * p + 1];
    const Entry next = b.val < a.val ? b : a;
    // An ancestor depends on this subtree only through nodes[p]; once the
    // recombined node is unchanged the climb can stop. Typical updates
    // (leaf is not its subtree's minimum) terminate after one level, which
    // is what makes the O(deg · log n) sparse repair O(deg) in practice.
    if (next.val == nodes[p].val && next.idx == nodes[p].idx) return;
    nodes[p] = next;
  }
}

DeltaState::MinTree::Entry DeltaState::MinTree::query(BitIndex lo,
                                                      BitIndex hi) const {
  // Ordered two-accumulator walk on the power-of-two tree: `left` combines
  // visited segments left-to-right, `right` right-to-left, so the tie-break
  // (left operand wins on equal values) yields the leftmost minimum — the
  // same answer as a left-to-right strict-< scan of [lo, hi).
  Entry left{kNoDelta, n};
  Entry right{kNoDelta, n};
  std::size_t l = static_cast<std::size_t>(m) + lo;
  std::size_t r = static_cast<std::size_t>(m) + hi;
  for (; l < r; l >>= 1, r >>= 1) {
    if (l & 1) {
      const Entry& e = nodes[l++];
      if (e.val < left.val) left = e;
    }
    if (r & 1) {
      const Entry& e = nodes[--r];
      if (right.val < e.val) {
        // keep right
      } else {
        right = e;
      }
    }
  }
  return right.val < left.val ? right : left;
}

// ---------------------------------------------------------------------------
// Construction.

DeltaState::DeltaState(const WeightMatrix& w) : w_(&w), x_(w.size()) {
  init_zero_state();
}

DeltaState::DeltaState(const WeightMatrix& w, const BitVector& x)
    : w_(&w), x_(x) {
  init_from_bits(x);
}

DeltaState::DeltaState(const QuboKernel& kernel)
    : w_(&kernel.dense()),
      sparse_(kernel.sparse()),
      x_(kernel.dense().size()),
      form_(kernel.form()),
      width_(kernel.width()) {
  init_zero_state();
}

DeltaState::DeltaState(const QuboKernel& kernel, const BitVector& x)
    : w_(&kernel.dense()),
      sparse_(kernel.sparse()),
      x_(x),
      form_(kernel.form()),
      width_(kernel.width()) {
  init_from_bits(x);
}

void DeltaState::init_zero_state() {
  // X = 0: E(0) = 0, Δ_i(0) = W_ii.
  const BitIndex n = w_->size();
  signs_.assign(n, +1);
  if (width_ == DeltaWidth::kNarrow32) {
    deltas32_.resize(n);
    for (BitIndex i = 0; i < n; ++i) {
      deltas32_[i] = static_cast<std::int32_t>(w_->at(i, i));
    }
  } else {
    deltas_.resize(n);
    for (BitIndex i = 0; i < n; ++i) deltas_[i] = w_->at(i, i);
  }
  energy_ = 0;
  matrix_reads_ = n;
  if (form_ == KernelForm::kSparse) tree_.build(*this);
}

void DeltaState::init_from_bits(const BitVector& x) {
  ABSQ_CHECK(w_->size() == x.size(), "matrix/vector size mismatch");
  const BitIndex n = w_->size();
  signs_.resize(n);
  for (BitIndex i = 0; i < n; ++i) {
    signs_[i] = static_cast<std::int8_t>(phi(x.get(i)));
  }
  const std::vector<Energy> d = all_deltas(*w_, x);
  if (width_ == DeltaWidth::kNarrow32) {
    // Safe: the kernel plan only selects the narrow width when the
    // worst-case bound max_k B_k fits, and every Δ is within that bound.
    deltas32_.resize(n);
    for (BitIndex i = 0; i < n; ++i) {
      deltas32_[i] = static_cast<std::int32_t>(d[i]);
    }
  } else {
    deltas_ = d;
  }
  energy_ = full_energy(*w_, x);
  matrix_reads_ = static_cast<std::uint64_t>(n) * n;
  if (form_ == KernelForm::kSparse) tree_.build(*this);
}

std::span<const Energy> DeltaState::deltas() const {
  ABSQ_CHECK(width_ == DeltaWidth::kWide64,
             "deltas() span is unavailable in the 32-bit Δ mode; use "
             "delta()/argmin_window()");
  return deltas_;
}

// ---------------------------------------------------------------------------
// Dense forms.

template <class D>
Energy DeltaState::flip_dense(D* deltas, BitIndex k) {
  const auto row = w_->row(k);
  // 2·φ(x_k) before the flip; Eq. (16) applies the pre-flip signs.
  const int two_phi_k = 2 * signs_[k];
  const Energy old_delta_k = static_cast<Energy>(deltas[k]);
  const BitIndex n = size();
  const std::int8_t* signs = signs_.data();
  if (form_ == KernelForm::kDenseSimd) {
#pragma omp simd
    for (BitIndex i = 0; i < n; ++i) {
      deltas[i] =
          add_repair(deltas[i], two_phi_k * signs[i] * static_cast<int>(row[i]));
    }
  } else {
    for (BitIndex i = 0; i < n; ++i) {
      deltas[i] =
          add_repair(deltas[i], two_phi_k * signs[i] * static_cast<int>(row[i]));
    }
  }
  // The loop touched i == k with the i ≠ k rule; the k = i case of Eq. (6)
  // is Δ_k ← −Δ_k (pre-flip value), so overwrite it.
  energy_ += old_delta_k;
  deltas[k] = static_cast<D>(-old_delta_k);
  signs_[k] = static_cast<std::int8_t>(-signs_[k]);
  x_.flip(k);
  ++flips_;
  matrix_reads_ += n;
  return energy_;
}

template <class D>
DeltaState::FlipOutcome DeltaState::flip_tracked_dense_scalar(D* deltas,
                                                              BitIndex k) {
  const auto row = w_->row(k);
  const int two_phi_k = 2 * signs_[k];
  const Energy old_delta_k = static_cast<Energy>(deltas[k]);
  const Energy new_energy = energy_ + old_delta_k;

  // Single fused pass: repair Δ_i and track min_{i≠k} Δ_i(new X). Strict <
  // keeps the leftmost minimum — the tie-break every form must match.
  D best_delta = 0;
  BitIndex best_bit = k;
  bool have_best = false;
  const BitIndex n = size();
  for (BitIndex i = 0; i < n; ++i) {
    const D d =
        add_repair(deltas[i], two_phi_k * signs_[i] * static_cast<int>(row[i]));
    deltas[i] = d;
    if (i != k && (!have_best || d < best_delta)) {
      best_delta = d;
      best_bit = i;
      have_best = true;
    }
  }
  deltas[k] = static_cast<D>(-old_delta_k);
  energy_ = new_energy;
  signs_[k] = static_cast<std::int8_t>(-signs_[k]);
  x_.flip(k);
  ++flips_;
  matrix_reads_ += n;

  // n == 1 has no neighbour other than k itself; report flipping back.
  if (!have_best) {
    return FlipOutcome{new_energy, new_energy + static_cast<Energy>(deltas[k]),
                       k};
  }
  return FlipOutcome{new_energy, new_energy + static_cast<Energy>(best_delta),
                     best_bit};
}

template <class D>
DeltaState::FlipOutcome DeltaState::flip_tracked_dense_simd(D* deltas,
                                                            BitIndex k) {
  const auto row = w_->row(k);
  const int two_phi_k = 2 * signs_[k];
  const Energy old_delta_k = static_cast<Energy>(deltas[k]);
  const Energy new_energy = energy_ + old_delta_k;
  const BitIndex n = size();
  const std::int8_t* signs = signs_.data();

  // Pass 1: branchless repair (the argmin is hoisted out so this loop
  // vectorizes — the fused scalar loop's per-element compare defeats GCC's
  // vectorizer on the int64 path).
#pragma omp simd
  for (BitIndex i = 0; i < n; ++i) {
    deltas[i] =
        add_repair(deltas[i], two_phi_k * signs[i] * static_cast<int>(row[i]));
  }
  deltas[k] = static_cast<D>(-old_delta_k);
  energy_ = new_energy;
  signs_[k] = static_cast<std::int8_t>(-signs_[k]);
  x_.flip(k);
  ++flips_;
  matrix_reads_ += n;

  if (n == 1) {
    return FlipOutcome{new_energy, new_energy + static_cast<Energy>(deltas[k]),
                       k};
  }

  // Pass 2: min value over i ≠ k (vectorizable reductions), then the
  // leftmost index attaining it — integer min is order-independent, so the
  // result is bit-identical to the fused scalar pass.
  D best = std::numeric_limits<D>::max();
#pragma omp simd reduction(min : best)
  for (BitIndex i = 0; i < k; ++i) {
    best = deltas[i] < best ? deltas[i] : best;
  }
#pragma omp simd reduction(min : best)
  for (BitIndex i = k + 1; i < n; ++i) {
    best = deltas[i] < best ? deltas[i] : best;
  }
  BitIndex best_bit = k;
  for (BitIndex i = 0; i < k; ++i) {
    if (deltas[i] == best) {
      best_bit = i;
      break;
    }
  }
  if (best_bit == k) {
    for (BitIndex i = k + 1; i < n; ++i) {
      if (deltas[i] == best) {
        best_bit = i;
        break;
      }
    }
  }
  return FlipOutcome{new_energy, new_energy + static_cast<Energy>(best),
                     best_bit};
}

// ---------------------------------------------------------------------------
// Sparse form.

template <class D>
void DeltaState::repair_sparse(D* deltas, BitIndex k) {
  const SparseWeightMatrix::Row row = sparse_->row(k);
  const int two_phi_k = 2 * signs_[k];
  const std::size_t deg = row.size();
  for (std::size_t p = 0; p < deg; ++p) {
    const BitIndex i = row.cols[p];
    if (i == k) continue;  // Δ_k gets the negation rule, not Eq. (16)
    const D d = add_repair(
        deltas[i], two_phi_k * signs_[i] * static_cast<int>(row.weights[p]));
    deltas[i] = d;
    tree_.update(i, static_cast<Energy>(d));
  }
}

Energy DeltaState::flip_sparse(BitIndex k) {
  const Energy old_delta_k = delta(k);
  if (width_ == DeltaWidth::kNarrow32) {
    repair_sparse(deltas32_.data(), k);
    deltas32_[k] = static_cast<std::int32_t>(-old_delta_k);
  } else {
    repair_sparse(deltas_.data(), k);
    deltas_[k] = -old_delta_k;
  }
  tree_.update(k, -old_delta_k);
  energy_ += old_delta_k;
  signs_[k] = static_cast<std::int8_t>(-signs_[k]);
  x_.flip(k);
  ++flips_;
  matrix_reads_ += sparse_->degree(k);
  return energy_;
}

DeltaState::FlipOutcome DeltaState::flip_tracked_sparse(BitIndex k) {
  const Energy new_energy = flip_sparse(k);
  // The repair already refreshed the tournament tree; the fused argmin of
  // the dense forms becomes two leftmost-min range queries around k.
  const BitIndex n = size();
  const MinTree::Entry a = tree_.query(0, k);
  const MinTree::Entry b = tree_.query(k + 1, n);
  const MinTree::Entry best = b.val < a.val ? b : a;
  if (best.idx >= n) {  // n == 1: only neighbour is flipping k back
    return FlipOutcome{new_energy, new_energy + delta(k), k};
  }
  return FlipOutcome{new_energy, new_energy + best.val, best.idx};
}

// ---------------------------------------------------------------------------
// Public dispatch.

Energy DeltaState::flip(BitIndex k) {
  ABSQ_DCHECK(k < size(), "flip index out of range");
  if (form_ == KernelForm::kSparse) return flip_sparse(k);
  return width_ == DeltaWidth::kWide64
             ? flip_dense(deltas_.data(), k)
             : flip_dense(deltas32_.data(), k);
}

DeltaState::FlipOutcome DeltaState::flip_tracked(BitIndex k) {
  ABSQ_DCHECK(k < size(), "flip index out of range");
  switch (form_) {
    case KernelForm::kSparse:
      return flip_tracked_sparse(k);
    case KernelForm::kDenseSimd:
      return width_ == DeltaWidth::kWide64
                 ? flip_tracked_dense_simd(deltas_.data(), k)
                 : flip_tracked_dense_simd(deltas32_.data(), k);
    case KernelForm::kDenseScalar:
      break;
  }
  return width_ == DeltaWidth::kWide64
             ? flip_tracked_dense_scalar(deltas_.data(), k)
             : flip_tracked_dense_scalar(deltas32_.data(), k);
}

template <class D>
BitIndex DeltaState::argmin_span(const D* deltas, BitIndex offset,
                                 BitIndex len) const {
  // Wrapping strict-< scan: first segment [offset, offset+first), then
  // [0, rest). First-seen minimum wins, exactly like the Fig. 2 policy.
  const BitIndex n = size();
  const BitIndex first = len < n - offset ? len : n - offset;
  BitIndex best = offset;
  D best_delta = deltas[offset];
  for (BitIndex i = offset + 1; i < offset + first; ++i) {
    if (deltas[i] < best_delta) {
      best_delta = deltas[i];
      best = i;
    }
  }
  for (BitIndex i = 0; i < len - first; ++i) {
    if (deltas[i] < best_delta) {
      best_delta = deltas[i];
      best = i;
    }
  }
  return best;
}

BitIndex DeltaState::argmin_window(BitIndex offset, BitIndex len) const {
  const BitIndex n = size();
  ABSQ_DCHECK(len >= 1 && len <= n, "window length outside [1, n]");
  offset %= n;
  if (form_ == KernelForm::kSparse) {
    const BitIndex first = len < n - offset ? len : n - offset;
    const MinTree::Entry a = tree_.query(offset, offset + first);
    if (len == first) return a.idx;
    const MinTree::Entry b = tree_.query(0, len - first);
    return b.val < a.val ? b.idx : a.idx;
  }
  return width_ == DeltaWidth::kWide64
             ? argmin_span(deltas_.data(), offset, len)
             : argmin_span(deltas32_.data(), offset, len);
}

}  // namespace absq
