#include "qubo/kernel.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace absq {

const char* to_string(KernelForm form) {
  switch (form) {
    case KernelForm::kDenseScalar:
      return "dense";
    case KernelForm::kDenseSimd:
      return "dense-simd";
    case KernelForm::kSparse:
      return "sparse";
  }
  return "?";
}

const char* to_string(DeltaWidth width) {
  switch (width) {
    case DeltaWidth::kWide64:
      return "64-bit";
    case DeltaWidth::kNarrow32:
      return "32-bit";
  }
  return "?";
}

KernelOptions::Form parse_kernel_form(const std::string& name) {
  if (name == "auto") return KernelOptions::Form::kAuto;
  if (name == "dense") return KernelOptions::Form::kDense;
  if (name == "dense-simd") return KernelOptions::Form::kDenseSimd;
  if (name == "sparse") return KernelOptions::Form::kSparse;
  ABSQ_CHECK(false, "unknown kernel form '"
                        << name << "' (expected auto|dense|dense-simd|sparse)");
  return KernelOptions::Form::kAuto;  // unreachable
}

Energy QuboKernel::worst_case_delta_bound(const WeightMatrix& w) {
  // Eq. (4): Δ_k(X) = φ(x_k)(2 Σ_{i≠k} W_ki x_i + W_kk). Over all X the
  // inner sum ranges over subset sums of row k, so with P_k = Σ_{i≠k}
  // max(W_ki, 0) and N_k = Σ_{i≠k} max(−W_ki, 0)
  //
  //     max_X |Δ_k(X)| = max(W_kk + 2 P_k,  2 N_k − W_kk)  =: B_k
  //
  // — exact (both extremes are reached by X selecting exactly the
  // positive / the negative entries), and every Δ the repair loop ever
  // stores is the Δ of some reachable state, so max_k B_k bounds the whole
  // run. Tightness is pinned by enumeration tests on small instances.
  Energy bound = 0;
  const BitIndex n = w.size();
  for (BitIndex k = 0; k < n; ++k) {
    const auto row = w.row(k);
    Energy pos = 0;
    Energy neg = 0;
    for (BitIndex i = 0; i < n; ++i) {
      if (i == k) continue;
      if (row[i] > 0) {
        pos += row[i];
      } else {
        neg -= row[i];
      }
    }
    const Energy diag = w.at(k, k);
    bound = std::max({bound, diag + 2 * pos, 2 * neg - diag});
  }
  return bound;
}

QuboKernel::QuboKernel(const WeightMatrix& w, const KernelOptions& options)
    : w_(&w), options_(options) {
  const BitIndex n = w.size();
  // One O(n²) analysis pass; instances are planned once and searched for
  // billions of flips, so this never shows up in a profile.
  for (BitIndex k = 0; k < n; ++k) {
    const auto row = w.row(k);
    for (BitIndex i = 0; i < n; ++i) {
      if (row[i] != 0) ++nonzeros_;
    }
  }
  delta_bound_ = worst_case_delta_bound(w);

  switch (options.form) {
    case KernelOptions::Form::kDense:
      form_ = KernelForm::kDenseScalar;
      break;
    case KernelOptions::Form::kDenseSimd:
      form_ = KernelForm::kDenseSimd;
      break;
    case KernelOptions::Form::kSparse:
      form_ = KernelForm::kSparse;
      break;
    case KernelOptions::Form::kAuto:
      form_ = (n >= options.sparse_min_bits &&
               density() <= options.sparse_density_threshold)
                  ? KernelForm::kSparse
                  : KernelForm::kDenseSimd;
      break;
  }
  if (form_ == KernelForm::kSparse) {
    sparse_ = std::make_shared<const SparseWeightMatrix>(w);
  }

  if (options.narrow_delta) {
    const Energy limit =
        std::min<Energy>(options.narrow_limit,
                         std::numeric_limits<std::int32_t>::max());
    if (delta_bound_ <= limit) {
      width_ = DeltaWidth::kNarrow32;
    } else {
      narrow_fallback_ = true;  // requested but provably unsafe → 64-bit
    }
  }
}

double QuboKernel::density() const {
  const double n = static_cast<double>(w_->size());
  if (n == 0.0) return 0.0;
  return static_cast<double>(nonzeros_) / (n * n);
}

std::string QuboKernel::description() const {
  std::ostringstream os;
  os << to_string(form_) << '/' << to_string(width_);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", density() * 100.0);
  os << " (n=" << w_->size() << ", density " << buf << "%, |delta|<="
     << delta_bound_;
  if (narrow_fallback_) os << ", narrow fallback";
  os << ')';
  return os.str();
}

}  // namespace absq
