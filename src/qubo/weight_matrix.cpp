#include "qubo/weight_matrix.hpp"

#include <algorithm>
#include <cstdlib>

#include "qubo/sparse_matrix.hpp"
#include "util/check.hpp"

namespace absq {

WeightMatrix::WeightMatrix(BitIndex n)
    : n_(n), data_(static_cast<std::size_t>(n) * n, 0) {}

std::vector<Weight> WeightMatrix::diagonal() const {
  std::vector<Weight> diag(n_);
  for (BitIndex i = 0; i < n_; ++i) diag[i] = at(i, i);
  return diag;
}

std::size_t WeightMatrix::nonzeros() const {
  std::size_t count = 0;
  for (BitIndex i = 0; i < n_; ++i) {
    for (BitIndex j = i; j < n_; ++j) {
      if (at(i, j) != 0) ++count;
    }
  }
  return count;
}

bool WeightMatrix::is_symmetric() const {
  for (BitIndex i = 0; i < n_; ++i) {
    for (BitIndex j = i + 1; j < n_; ++j) {
      if (at(i, j) != at(j, i)) return false;
    }
  }
  return true;
}

WeightMatrixBuilder::WeightMatrixBuilder(BitIndex n) : n_(n) {
  ABSQ_CHECK(n >= 1 && n <= kMaxBits,
             "instance size " << n << " outside [1, " << kMaxBits << "]");
}

std::uint64_t WeightMatrixBuilder::key(BitIndex i, BitIndex j) const {
  if (i > j) std::swap(i, j);
  return static_cast<std::uint64_t>(i) * n_ + j;
}

void WeightMatrixBuilder::add(BitIndex i, BitIndex j, Energy w) {
  ABSQ_CHECK(i < n_ && j < n_,
             "term (" << i << ", " << j << ") outside instance of size " << n_);
  if (w == 0) return;
  acc_[key(i, j)] += w;
}

Energy WeightMatrixBuilder::max_abs_coefficient() const {
  Energy max_abs = 0;
  for (const auto& [k, c] : acc_) max_abs = std::max(max_abs, std::abs(c));
  return max_abs;
}

bool WeightMatrixBuilder::any_odd_offdiagonal() const {
  for (const auto& [k, c] : acc_) {
    const BitIndex i = static_cast<BitIndex>(k / n_);
    const BitIndex j = static_cast<BitIndex>(k % n_);
    if (i != j && (c & 1) != 0) return true;
  }
  return false;
}

// Quantizes one split coefficient by 2^shift, truncating toward zero for
// both signs. Arithmetic >> would round negative values toward −∞, biasing
// every negative coefficient of a quantized instance one ULP low (and even
// pushing −(kMaxWeight+1)·2^s past kMinWeight) — the symmetric truncation
// matches the documented E_true ≈ E_scaled · 2^shift decode contract.
Energy WeightMatrixBuilder::quantize(Energy value, int shift) {
  return value < 0 ? -(-value >> shift) : value >> shift;
}

WeightMatrix WeightMatrixBuilder::assemble(Energy scale, int shift) const {
  WeightMatrix w(n_);
  for (const auto& [k, c] : acc_) {
    const BitIndex i = static_cast<BitIndex>(k / n_);
    const BitIndex j = static_cast<BitIndex>(k % n_);
    const Energy scaled = c * scale;
    const Energy v = quantize((i == j) ? scaled : scaled / 2, shift);
    ABSQ_CHECK(v >= kMinWeight && v <= kMaxWeight,
               "coefficient of x_" << i << "·x_" << j << " = " << v
                                   << " exceeds 16-bit weight range; "
                                      "consider build_scaled()");
    w.set_symmetric(i, j, static_cast<Weight>(v));
  }
  return w;
}

SparseWeightMatrix WeightMatrixBuilder::build_sparse() const {
  const Energy scale = any_odd_offdiagonal() ? 2 : 1;
  energy_scale_ = static_cast<int>(scale);
  std::vector<SparseWeightMatrix::Triplet> terms;
  terms.reserve(acc_.size());
  for (const auto& [k, c] : acc_) {
    const BitIndex i = static_cast<BitIndex>(k / n_);
    const BitIndex j = static_cast<BitIndex>(k % n_);
    const Energy v = (i == j) ? c * scale : c * scale / 2;
    ABSQ_CHECK(v >= kMinWeight && v <= kMaxWeight,
               "coefficient of x_" << i << "·x_" << j << " = " << v
                                   << " exceeds 16-bit weight range");
    terms.push_back({i, j, static_cast<Weight>(v)});
  }
  return SparseWeightMatrix::from_triplets(n_, terms);
}

WeightMatrix WeightMatrixBuilder::build() const {
  const Energy scale = any_odd_offdiagonal() ? 2 : 1;
  energy_scale_ = static_cast<int>(scale);
  return assemble(scale, /*shift=*/0);
}

WeightMatrix WeightMatrixBuilder::build_scaled(int* shift_out) const {
  const Energy scale = any_odd_offdiagonal() ? 2 : 1;
  energy_scale_ = static_cast<int>(scale);

  Energy max_abs = 0;
  for (const auto& [k, c] : acc_) {
    const BitIndex i = static_cast<BitIndex>(k / n_);
    const BitIndex j = static_cast<BitIndex>(k % n_);
    const Energy scaled = c * scale;
    max_abs = std::max(max_abs, std::abs((i == j) ? scaled : scaled / 2));
  }
  int shift = 0;
  while ((max_abs >> shift) > kMaxWeight) ++shift;
  if (shift_out != nullptr) *shift_out = shift;
  return assemble(scale, shift);
}

}  // namespace absq
