// SearchBlock — the CUDA-block analogue (Section 3.2, device Steps 2–5).
//
// One block owns one persistent Δ-maintained search state. Per iteration it
//
//   Step 2:  takes a target solution T bred by the host GA,
//   Step 3:  resets its best-found incumbent (premature-convergence guard:
//            already-reported solutions are not reported again),
//   Step 4a: runs a straight search from its current solution C to T,
//   Step 4b: runs its portfolio member's local search for a fixed number
//            of steps, ending at C′ — the start of the next iteration,
//   Step 5:  reports the best solution found during Steps 4a+4b.
//
// Because C′ feeds the next straight search, the Δ state is never rebuilt:
// the block achieves the O(1) search efficiency of Theorem 1 for its entire
// lifetime.
//
// The Step 4b search is one member of the Diverse-ABS portfolio
// (portfolio/block_algorithm.hpp). By default each block runs the paper's
// windowed min-Δ policy (Fig. 2) with its own window length l — the
// temperature analogue, so a device runs a parallel-tempering-like ladder —
// and that default is bit-identical to the pre-portfolio solver. Three
// extensions are built in:
//   * an arbitrary SelectionPolicy prototype can be stamped onto blocks
//     ("each CUDA block would perform different algorithms"),
//   * adaptive mode: a min-Δ block whose reports stagnate for a
//     configurable number of iterations advances its window length along a
//     ladder ("... and possibly they are changed automatically"), and
//   * the portfolio: a block can run SA-scheduled acceptance or Lewis-2017
//     multi-start instead, and the adaptive controller can re-assign the
//     member at runtime through the lock-free request_algorithm handoff.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "portfolio/block_algorithm.hpp"
#include "qubo/bit_vector.hpp"
#include "qubo/delta_state.hpp"
#include "qubo/kernel.hpp"
#include "qubo/weight_matrix.hpp"
#include "search/policy.hpp"
#include "search/stats.hpp"
#include "search/tracker.hpp"
#include "sim/mailbox.hpp"
#include "util/rng.hpp"

namespace absq {

class SearchBlock {
 public:
  struct Config {
    std::uint32_t device_id = 0;
    std::uint32_t block_id = 0;
    /// Window length l of the default selection policy (Fig. 2).
    BitIndex window = 16;
    /// Fixed flip count of the Step 4b local search.
    std::uint64_t local_steps = 1024;
    /// Seed for the RNG handed to the policy.
    std::uint64_t seed = 1;
    /// Optional custom policy; cloned per block when set (the default
    /// windowed min-Δ policy is used otherwise). Not owned. Only the
    /// min-Δ portfolio member uses it.
    const SelectionPolicy* policy_prototype = nullptr;
    /// Non-empty enables adaptive mode: on stagnation the block's window
    /// advances through this ladder (ignored when policy_prototype set).
    std::vector<BitIndex> adaptive_windows;
    /// Iterations without a best-report improvement before adapting.
    std::uint32_t stagnation_limit = 4;
    /// Initial portfolio member for Step 4b (Diverse ABS). kMinDelta is
    /// the legacy solver.
    portfolio::BlockAlgorithmKind algorithm =
        portfolio::BlockAlgorithmKind::kMinDelta;
    /// Tuning knobs of the non-default members.
    portfolio::AlgorithmOptions algorithm_options;
    /// Optional event tracer (not owned; null = tracing disabled). The
    /// block emits one "straight" and one "local" span per iteration —
    /// pid = trace_pid_base + device_id + 1, tid = block_id, so every
    /// block is a lane of its device's process in the trace viewer.
    obs::EventTracer* tracer = nullptr;
    /// Trace pid offset (obs::Telemetry::pid_base) — strided per job by
    /// the serving layer so concurrent jobs occupy disjoint pid ranges.
    std::uint32_t trace_pid_base = 0;
    /// Kernel plan shared by the device's blocks (not owned; must outlive
    /// the block). Null = the legacy dense scalar kernel. Every plan is
    /// bit-identical, so this only changes the block's throughput.
    const QuboKernel* kernel = nullptr;
  };

  /// The matrix is shared by all blocks and must outlive them.
  SearchBlock(const WeightMatrix& w, const Config& config);

  /// One full Step 2→5 iteration against `target`. Returns the report the
  /// block would store into the solution buffer.
  [[nodiscard]] sim::ReportedSolution iterate(const BitVector& target);

  /// Current solution C (the start of the next straight search).
  [[nodiscard]] const BitVector& current() const { return state_.bits(); }
  [[nodiscard]] Energy current_energy() const { return state_.energy(); }

  [[nodiscard]] const Config& config() const { return config_; }

  /// Window length currently in use (== config().window unless adaptive
  /// mode has switched it; 0 when a custom policy prototype or a
  /// non-min-Δ portfolio member is active).
  [[nodiscard]] BitIndex current_window() const { return current_window_; }

  /// Times adaptive mode advanced the ladder.
  [[nodiscard]] std::uint64_t policy_switches() const {
    return policy_switches_;
  }

  /// Asks the block to switch its Step 4b portfolio member at the start
  /// of its next iteration — the controller's reallocation primitive.
  /// Thread-safe against a concurrently iterating device worker (a single
  /// atomic slot: the latest request wins).
  void request_algorithm(portfolio::BlockAlgorithmKind kind) {
    requested_algorithm_.store(static_cast<std::uint8_t>(kind),
                               std::memory_order_release);
  }

  /// Current portfolio member. Read from the owning worker thread, or
  /// from the host only while the device is stopped.
  [[nodiscard]] portfolio::BlockAlgorithmKind algorithm_kind() const {
    return kind_;
  }

  /// Times a request_algorithm handoff actually changed the member.
  [[nodiscard]] std::uint64_t algorithm_switches() const {
    return algorithm_switches_;
  }

  /// Lifetime totals across all iterations.
  [[nodiscard]] const SearchStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }

 private:
  /// Sentinel for "no pending algorithm request".
  static constexpr std::uint8_t kNoAlgorithmRequest = 0xff;

  [[nodiscard]] BitIndex staggered_offset() const;
  void adapt_on_stagnation(Energy reported_energy);
  /// The min-Δ member's selection policy at the current ladder rung /
  /// prototype (updates current_window_ as a side effect).
  [[nodiscard]] std::unique_ptr<SelectionPolicy> make_min_delta_policy();
  /// Replaces the active portfolio member.
  void set_algorithm(portfolio::BlockAlgorithmKind kind);

  const WeightMatrix* w_;
  Config config_;
  DeltaState state_;
  BestTracker tracker_;
  std::unique_ptr<portfolio::BlockAlgorithm> algorithm_;
  /// Non-null iff algorithm_ is the min-Δ member (the ladder's hook).
  portfolio::MinDeltaAlgorithm* min_delta_ = nullptr;
  portfolio::BlockAlgorithmKind kind_ =
      portfolio::BlockAlgorithmKind::kMinDelta;
  std::atomic<std::uint8_t> requested_algorithm_{kNoAlgorithmRequest};
  std::uint64_t algorithm_switches_ = 0;
  BitIndex current_window_ = 0;
  std::size_t ladder_index_ = 0;
  Energy best_reported_ = 0;
  bool any_report_ = false;
  std::uint32_t stagnant_iterations_ = 0;
  std::uint64_t policy_switches_ = 0;
  Rng rng_;
  SearchStats stats_;
  std::uint64_t iterations_ = 0;
};

}  // namespace absq
