// Device — one simulated GPU running many SearchBlocks (Section 3.2).
// absq-lint: allow-file(relaxed-order) — see device.cpp: monotonic
// statistics counters plus a visibility-only stop flag.
//
// The paper's GPU keeps `active_blocks` CUDA blocks resident (the Table 2
// occupancy arithmetic) and lets each run its Step 2–5 loop asynchronously
// against the global-memory mailboxes. Here the block set is partitioned
// into per-worker shards and run on a ThreadPool: worker w owns blocks
// w, w+W, w+2W, … and loops over them — a visited block polls the target
// buffer, runs one iteration (straight search + fixed local search) and
// pushes its report. Blocks never share state, and the mailboxes are
// sharded per worker, so the only cross-worker traffic is the atomic
// counters. Nothing in the host protocol can distinguish this schedule
// from the GPU's truly concurrent blocks — only wall-clock throughput
// differs, which is exactly the substitution DESIGN.md documents.
//
// `DeviceConfig::threads_per_device` picks the worker count. Explicit 0
// preserves the legacy schedule — a single device thread visiting every
// block round-robin — which the deterministic SyncAbsRunner relies on.
// Leaving it unset ("auto") resolves to the hardware concurrency divided
// by the device count (floor 1); the resolution happens in AbsSolver /
// SyncAbsRunner, or in the Device constructor for a standalone device.
//
// The device also supports a synchronous mode (step_all_blocks_once) used by
// the deterministic tests and the throughput benches, which measure the
// search kernel without scheduler noise.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "abs/search_block.hpp"
#include "obs/telemetry.hpp"
#include "qubo/kernel.hpp"
#include "qubo/weight_matrix.hpp"
#include "sim/device_spec.hpp"
#include "sim/mailbox.hpp"
#include "util/thread_pool.hpp"

namespace absq {

struct DeviceConfig {
  std::uint32_t device_id = 0;
  sim::DeviceSpec spec;  ///< RTX 2080 Ti by default
  /// Bits handled per simulated thread (p). 0 = smallest feasible p.
  std::uint32_t bits_per_thread = 0;
  /// Caps the resident block count below the occupancy-derived value
  /// (CPU-affordability knob; 0 = no cap). The occupancy model still
  /// reports the hardware value for Table 2.
  std::uint32_t block_limit = 0;
  /// Step 4b flip count. 0 = one sweep (n flips).
  std::uint64_t local_steps = 0;
  /// Worker threads running the block shards. nullopt = auto (hardware
  /// concurrency / device count, floor 1 — resolved by the owning solver,
  /// or against a device count of 1 for a standalone Device). Explicit 0 =
  /// the legacy single device thread visiting all blocks round-robin (the
  /// deterministic-schedule mode SyncAbsRunner forces).
  std::optional<std::uint32_t> threads_per_device;
  /// Window lengths (l) assigned to blocks round-robin. Empty = a geometric
  /// ladder 2, 4, 8, ..., n/2 (the parallel-tempering default).
  std::vector<BitIndex> window_schedule;
  /// Optional custom Step 4b policy, cloned per block; must outlive the
  /// device. Overrides window_schedule/adaptive.
  const SelectionPolicy* policy_prototype = nullptr;
  /// Adaptive mode (paper future work): blocks whose reports stagnate for
  /// `stagnation_limit` iterations advance their window along the ladder.
  bool adaptive = false;
  std::uint32_t stagnation_limit = 4;
  /// Diverse-ABS portfolio: initial Step 4b member assigned to block b is
  /// algorithm_schedule[b % size]. Empty = every block runs the legacy
  /// windowed min-Δ search (bit-identical to the pre-portfolio device).
  std::vector<portfolio::BlockAlgorithmKind> algorithm_schedule;
  /// Tuning knobs shared by all non-default portfolio members.
  portfolio::AlgorithmOptions algorithm_options;
  std::uint64_t seed = 1;
  /// Flip-kernel plan options. The default auto-selects the cheapest
  /// bit-identical form per instance (sparse CSR on sparse matrices,
  /// vectorized dense otherwise); see qubo/kernel.hpp and docs/kernels.md.
  KernelOptions kernel;
  /// Mailbox capacities. 0 = one slot per resident block.
  std::size_t target_capacity = 0;
  std::size_t solution_capacity = 0;
  /// Observability sinks (non-owning; default = disabled). With metrics
  /// attached the device registers per-device and per-block counters at
  /// construction and pays one relaxed atomic add per counter per block
  /// iteration; with a tracer attached it emits per-iteration spans and
  /// drop/miss instants. Both must outlive the device.
  obs::Telemetry telemetry;
};

class Device {
 public:
  Device(const WeightMatrix& w, const DeviceConfig& config);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Launches the worker threads (or the single legacy device thread).
  /// Idempotent.
  void start();

  /// Signals the workers to finish their current block visit, then joins
  /// them. Idempotent.
  void stop();

  /// Signals stop WITHOUT joining — the watchdog's quarantine primitive:
  /// the host must never block on a possibly-hung device thread. A later
  /// stop() (or the destructor) performs the join.
  void request_stop() {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  /// First exception that escaped a worker (or the legacy device thread),
  /// or nullptr while the device is healthy. A non-null failure means at
  /// least one worker is dead; the solver watchdog quarantines the device.
  [[nodiscard]] std::exception_ptr failure() const;

  [[nodiscard]] bool running() const { return running_; }

  /// Host-facing mailboxes.
  [[nodiscard]] sim::TargetBuffer& targets() { return targets_; }
  [[nodiscard]] sim::SolutionBuffer& solutions() { return solutions_; }

  /// Synchronous mode: every block performs exactly one iteration on the
  /// calling thread. Must not be mixed with start().
  void step_all_blocks_once();

  /// The kernel plan all blocks of this device share.
  [[nodiscard]] const QuboKernel& kernel() const { return *kernel_; }

  [[nodiscard]] const sim::Occupancy& occupancy() const { return occupancy_; }
  [[nodiscard]] std::uint32_t block_count() const {
    return static_cast<std::uint32_t>(blocks_.size());
  }
  [[nodiscard]] const DeviceConfig& config() const { return config_; }

  /// Worker threads start() will run (0 = legacy single-thread schedule).
  [[nodiscard]] std::uint32_t worker_count() const { return workers_; }

  /// Flips committed by all blocks (each flip = n evaluated solutions).
  [[nodiscard]] std::uint64_t total_flips() const {
    return flips_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_evaluated() const;
  [[nodiscard]] std::uint64_t total_iterations() const {
    return iterations_.load(std::memory_order_relaxed);
  }
  /// Block iterations that found no fresh target (the host was behind) —
  /// the contention/starvation signal of the async protocol.
  [[nodiscard]] std::uint64_t target_misses() const {
    return target_misses_.load(std::memory_order_relaxed);
  }

  /// Read-only access for inspection/tests; blocks are owned by the device.
  [[nodiscard]] const SearchBlock& block(std::size_t i) const {
    return *blocks_[i];
  }

  /// Asks block `block` to switch its Step 4b portfolio member at its next
  /// iteration — the adaptive controller's reallocation hook. Thread-safe
  /// (a single atomic slot per block; the latest request wins).
  void request_block_algorithm(std::uint32_t block,
                               portfolio::BlockAlgorithmKind kind) {
    blocks_[block]->request_algorithm(kind);
  }

  /// Times any block actually changed its portfolio member. Host-read:
  /// only meaningful while the device is stopped.
  [[nodiscard]] std::uint64_t total_algorithm_switches() const;

 private:
  static std::uint32_t effective_block_count(const sim::Occupancy& occupancy,
                                             const DeviceConfig& config);
  static std::uint32_t resolve_workers(const DeviceConfig& config);

  /// One Step 2–5 iteration of block `index`, attributed to `worker`'s
  /// mailbox shards.
  void iterate_block(std::size_t index, std::size_t worker);
  void run_legacy_loop(const std::atomic<bool>* stop_flag);
  void run_shard(std::size_t worker, const std::atomic<bool>* stop_flag);

  const WeightMatrix* w_;
  DeviceConfig config_;
  std::unique_ptr<QuboKernel> kernel_;  ///< plan shared by all blocks
  sim::Occupancy occupancy_;
  std::uint32_t workers_;
  std::vector<std::unique_ptr<SearchBlock>> blocks_;
  sim::TargetBuffer targets_;
  sim::SolutionBuffer solutions_;

  std::thread thread_;                 ///< legacy mode (workers_ == 0)
  std::unique_ptr<ThreadPool> pool_;   ///< sharded mode (workers_ >= 1)
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;

  // Legacy-thread failure capture (the pool captures its own in sharded
  // mode). The atomic flag keeps the healthy-path poll lock-free.
  mutable std::mutex failure_mutex_;
  std::atomic<bool> legacy_failed_{false};
  std::exception_ptr legacy_failure_;

  std::atomic<std::uint64_t> flips_{0};
  std::atomic<std::uint64_t> iterations_{0};
  std::atomic<std::uint64_t> target_misses_{0};

  // Telemetry series, resolved once at construction (null = disabled).
  obs::Counter* m_iterations_ = nullptr;
  obs::Counter* m_flips_ = nullptr;
  obs::Counter* m_target_misses_ = nullptr;
  obs::Histogram* m_iteration_flips_ = nullptr;
  std::vector<obs::Counter*> m_block_flips_;       ///< per block
  std::vector<obs::Counter*> m_block_iterations_;  ///< per block
};

}  // namespace absq
