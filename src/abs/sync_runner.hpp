// SyncAbsRunner — a deterministic, single-threaded executor of the ABS
// protocol.
//
// The production AbsSolver runs devices on their own threads, which is
// faithful to the paper's asynchronous design but makes runs depend on OS
// scheduling. For experiments that must be bit-reproducible (regression
// baselines, paired A/B ablations, debugging) this runner executes the
// same host logic and the same Device/SearchBlock code in strict rounds:
//
//   round := every device steps all its blocks once (synchronously),
//            then the host drains, inserts, and breeds replacement targets.
//
// Identical (instance, config) always produces identical results — a
// property the test suite pins down. The trade-off is fidelity: there is
// no asynchrony, so host/device overlap effects are absent by design.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "abs/device.hpp"
#include "abs/solver.hpp"
#include "ga/operators.hpp"
#include "ga/solution_pool.hpp"

namespace absq {

class SyncAbsRunner {
 public:
  /// Uses the same configuration type as AbsSolver. threads_per_device is
  /// forced to 0 (single-shard mailboxes, legacy schedule) so results stay
  /// bit-reproducible across machines regardless of core count.
  SyncAbsRunner(const WeightMatrix& w, AbsConfig config);

  /// Runs `rounds` synchronous rounds (starting from a fresh pool on the
  /// first call; subsequent calls continue). Returns the result so far.
  AbsResult run_rounds(std::uint64_t rounds);

  /// Runs rounds until the pool's best energy is ≤ target or `max_rounds`
  /// elapsed (0 = unlimited is rejected).
  AbsResult run_to_target(Energy target, std::uint64_t max_rounds);

  [[nodiscard]] const SolutionPool& pool() const { return pool_; }
  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_; }
  [[nodiscard]] const Device& device(std::size_t i) const {
    return *devices_[i];
  }

 private:
  void ensure_started();
  void one_round(AbsResult& result);
  [[nodiscard]] std::uint64_t lifetime_flips() const;
  /// Fills the derived fields. total_flips/evaluated_solutions stay
  /// lifetime totals ("the result so far"); search_rate pairs this call's
  /// seconds with the flips committed since `flips_before`.
  AbsResult finalize(AbsResult result, std::uint64_t flips_before) const;

  const WeightMatrix* w_;
  AbsConfig config_;
  SolutionPool pool_;
  std::vector<std::unique_ptr<Device>> devices_;
  Rng rng_;
  bool started_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t reports_received_ = 0;
  std::uint64_t reports_inserted_ = 0;
  std::uint64_t targets_generated_ = 0;
};

}  // namespace absq
