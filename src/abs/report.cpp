#include "abs/report.hpp"

#include <fstream>

#include "ga/solution_pool.hpp"
#include "obs/json_text.hpp"
#include "util/check.hpp"

namespace absq {

using obs::json_escape;
using obs::json_number;

namespace {

std::string quoted(const std::string& text) {
  std::string out = "\"";
  out += json_escape(text);
  out += '"';
  return out;
}

/// kUnevaluated means "no evaluated solution yet" — exported as null.
std::string energy_json(Energy energy) {
  if (energy == kUnevaluated) return "null";
  return std::to_string(energy);
}

}  // namespace

void write_run_report(std::ostream& out, const RunReportMeta& meta,
                      const AbsResult& result,
                      const obs::MetricsRegistry* metrics) {
  out << "{\"type\":\"meta\",\"tool\":" << quoted(meta.tool)
      << ",\"instance\":" << quoted(meta.instance)
      << ",\"seed\":" << meta.seed;
  for (const auto& [key, value] : meta.extra) {
    out << "," << quoted(key) << ":" << quoted(value);
  }
  out << "}\n";

  out << "{\"type\":\"result\",\"best_energy\":" << energy_json(
             result.best_energy)
      << ",\"reached_target\":" << (result.reached_target ? "true" : "false")
      << ",\"cancelled\":" << (result.cancelled ? "true" : "false")
      << ",\"seconds\":" << json_number(result.seconds)
      << ",\"total_flips\":" << result.total_flips
      << ",\"evaluated_solutions\":" << result.evaluated_solutions
      << ",\"search_rate\":" << json_number(result.search_rate)
      << ",\"reports_received\":" << result.reports_received
      << ",\"reports_inserted\":" << result.reports_inserted
      << ",\"duplicates_rejected\":" << result.duplicates_rejected
      << ",\"pool_evictions\":" << result.pool_evictions
      << ",\"targets_generated\":" << result.targets_generated
      << ",\"solutions_dropped\":" << result.solutions_dropped
      << ",\"targets_dropped\":" << result.targets_dropped
      << ",\"failed_devices\":[";
  for (std::size_t i = 0; i < result.failed_devices.size(); ++i) {
    if (i > 0) out << ",";
    out << result.failed_devices[i];
  }
  out << "],\"checkpoints_written\":" << result.checkpoints_written
      << ",\"checkpoints_failed\":" << result.checkpoints_failed
      << ",\"migrations\":" << result.migrations
      << ",\"migration_events\":" << result.migration_events
      << ",\"controller_reassignments\":" << result.controller_reassignments
      << "}\n";

  for (const auto& device : result.devices) {
    out << "{\"type\":\"device\",\"device\":" << device.device_id
        << ",\"workers\":" << device.workers
        << ",\"flips\":" << device.flips
        << ",\"iterations\":" << device.iterations
        << ",\"reports\":" << device.reports
        << ",\"target_misses\":" << device.target_misses
        << ",\"targets_dropped\":" << device.targets_dropped
        << ",\"solutions_dropped\":" << device.solutions_dropped
        << ",\"algorithm_switches\":" << device.algorithm_switches
        << ",\"health\":" << quoted(to_string(device.health))
        << ",\"restarts\":" << device.restarts
        << ",\"failure\":" << quoted(device.failure) << "}\n";
  }

  // Diverse-ABS runs: one line per island pool (absent on classic runs).
  for (const auto& island : result.islands) {
    out << "{\"type\":\"island\",\"island\":" << island.island_id
        << ",\"best_energy\":" << energy_json(island.best_energy)
        << ",\"pool_evaluated\":" << island.pool_evaluated
        << ",\"inserts\":" << island.inserts
        << ",\"migrations_in\":" << island.migrations_in
        << ",\"blocks\":" << island.blocks << "}\n";
  }

  for (const auto& [seconds, energy] : result.best_trace) {
    out << "{\"type\":\"improvement\",\"seconds\":" << json_number(seconds)
        << ",\"energy\":" << energy << "}\n";
  }

  for (const auto& snapshot : result.snapshots) {
    out << "{\"type\":\"snapshot\",\"seconds\":" << json_number(
               snapshot.seconds)
        << ",\"best_energy\":" << energy_json(snapshot.best_energy)
        << ",\"pool_evaluated\":" << snapshot.pool_evaluated
        << ",\"total_flips\":" << snapshot.total_flips
        << ",\"window_rate\":" << json_number(snapshot.window_rate) << "}\n";
  }

  if (metrics != nullptr) {
    const obs::MetricsSnapshot scrape = metrics->scrape();
    for (const auto& family : scrape.families) {
      for (const auto& series : family.series) {
        out << "{\"type\":\"metric\",\"name\":" << quoted(family.name)
            << ",\"labels\":{";
        bool first = true;
        for (const auto& [key, value] : series.labels.pairs()) {
          if (!first) out << ",";
          first = false;
          out << quoted(key) << ":" << quoted(value);
        }
        out << "}";
        switch (family.kind) {
          case obs::MetricsSnapshot::Kind::kCounter:
            out << ",\"kind\":\"counter\",\"value\":" << series.counter_value;
            break;
          case obs::MetricsSnapshot::Kind::kGauge:
            out << ",\"kind\":\"gauge\",\"value\":"
                << json_number(series.gauge_value);
            break;
          case obs::MetricsSnapshot::Kind::kHistogram: {
            out << ",\"kind\":\"histogram\",\"count\":" << series.count
                << ",\"sum\":" << series.sum << ",\"buckets\":[";
            // [le, count] pairs for non-empty buckets only.
            bool first_bucket = true;
            for (std::size_t b = 0; b < series.buckets.size(); ++b) {
              if (series.buckets[b] == 0) continue;
              if (!first_bucket) out << ",";
              first_bucket = false;
              const bool overflow = b + 1 == series.buckets.size();
              out << "["
                  << (overflow ? std::string("null")
                               : std::to_string((std::uint64_t{1} << b) - 1))
                  << "," << series.buckets[b] << "]";
            }
            out << "]";
            break;
          }
        }
        out << "}\n";
      }
    }
  }
}

void write_run_report_file(const std::string& path, const RunReportMeta& meta,
                           const AbsResult& result,
                           const obs::MetricsRegistry* metrics) {
  std::ofstream out(path, std::ios::trunc);
  ABSQ_CHECK(out.good(), "cannot open report file '" << path << "'");
  write_run_report(out, meta, result, metrics);
  ABSQ_CHECK(out.good(), "write to report file '" << path << "' failed");
}

}  // namespace absq
