#include "abs/device.hpp"
// absq-lint: allow-file(relaxed-order) — flips_/iterations_/target_misses_
// are monotonic statistics counters read independently of the data they
// describe (Fig. 5 counter protocol), and the stop flag only needs
// eventual visibility; none of them publish other memory.

#include <algorithm>
#include <string>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace absq {
namespace {

/// Default parallel-tempering ladder: 2, 4, 8, ..., n/2.
std::vector<BitIndex> default_window_schedule(BitIndex n) {
  std::vector<BitIndex> ladder;
  for (BitIndex l = 2; l <= n / 2; l *= 2) ladder.push_back(l);
  if (ladder.empty()) ladder.push_back(1);
  return ladder;
}

}  // namespace

std::uint32_t Device::effective_block_count(const sim::Occupancy& occupancy,
                                            const DeviceConfig& config) {
  std::uint32_t count = occupancy.active_blocks;
  if (config.block_limit != 0) count = std::min(count, config.block_limit);
  ABSQ_CHECK(count >= 1, "device must host at least one block");
  return count;
}

std::uint32_t Device::resolve_workers(const DeviceConfig& config) {
  if (config.threads_per_device.has_value()) {
    return *config.threads_per_device;
  }
  // Standalone device: all of the host. Multi-device owners (AbsSolver)
  // resolve the auto default themselves, dividing by the device count.
  return std::max(1u, std::thread::hardware_concurrency());
}

Device::Device(const WeightMatrix& w, const DeviceConfig& config)
    : w_(&w),
      config_(config),
      kernel_(std::make_unique<QuboKernel>(w, config.kernel)),
      occupancy_(sim::compute_occupancy(
          config.spec, w.size(),
          config.bits_per_thread != 0
              ? config.bits_per_thread
              : sim::default_bits_per_thread(config.spec, w.size()))),
      workers_(resolve_workers(config)),
      targets_(config.target_capacity != 0
                   ? config.target_capacity
                   : effective_block_count(occupancy_, config),
               std::max(1u, workers_)),
      solutions_(config.solution_capacity != 0
                     ? config.solution_capacity
                     : effective_block_count(occupancy_, config),
                 std::max(1u, workers_)) {
  const std::uint32_t block_count = effective_block_count(occupancy_, config);

  const std::vector<BitIndex> ladder = config.window_schedule.empty()
                                           ? default_window_schedule(w.size())
                                           : config.window_schedule;
  const std::uint64_t local_steps =
      config.local_steps != 0 ? config.local_steps : w.size();

  blocks_.reserve(block_count);
  for (std::uint32_t b = 0; b < block_count; ++b) {
    SearchBlock::Config block_config;
    block_config.device_id = config.device_id;
    block_config.block_id = b;
    block_config.window = ladder[b % ladder.size()];
    block_config.local_steps = local_steps;
    block_config.seed =
        mix64(config.seed ^ (0x9e3779b97f4a7c15ULL * (config.device_id + 1)));
    block_config.policy_prototype = config.policy_prototype;
    if (config.adaptive && config.policy_prototype == nullptr) {
      block_config.adaptive_windows = ladder;
      block_config.stagnation_limit = config.stagnation_limit;
    }
    if (!config.algorithm_schedule.empty()) {
      block_config.algorithm =
          config.algorithm_schedule[b % config.algorithm_schedule.size()];
      block_config.algorithm_options = config.algorithm_options;
    }
    block_config.tracer = config.telemetry.tracer;
    block_config.trace_pid_base = config.telemetry.pid_base;
    block_config.kernel = kernel_.get();
    blocks_.push_back(std::make_unique<SearchBlock>(w, block_config));
  }

  // Resolve telemetry series once; the per-iteration path then pays only
  // relaxed atomic adds (or nothing when disabled).
  const std::uint32_t trace_pid =
      config.telemetry.pid_base + config.device_id + 1;
  if (config.telemetry.tracer != nullptr) {
    targets_.set_tracer(config.telemetry.tracer, trace_pid);
    solutions_.set_tracer(config.telemetry.tracer, trace_pid);
  }
  if (obs::MetricsRegistry* registry = config.telemetry.metrics;
      registry != nullptr) {
    const std::string device_label = std::to_string(config.device_id);
    const obs::Labels device_labels =
        config.telemetry.with({{"device", device_label}});
    m_iterations_ =
        &registry->counter("absq_device_iterations_total", device_labels);
    m_flips_ = &registry->counter("absq_device_flips_total", device_labels);
    m_target_misses_ =
        &registry->counter("absq_device_target_misses_total", device_labels);
    m_iteration_flips_ =
        &registry->histogram("absq_iteration_flips", device_labels);
    m_block_flips_.reserve(block_count);
    m_block_iterations_.reserve(block_count);
    for (std::uint32_t b = 0; b < block_count; ++b) {
      const obs::Labels block_labels = config.telemetry.with(
          {{"device", device_label}, {"block", std::to_string(b)}});
      m_block_flips_.push_back(
          &registry->counter("absq_block_flips_total", block_labels));
      m_block_iterations_.push_back(
          &registry->counter("absq_block_iterations_total", block_labels));
    }
  }
}

Device::~Device() { stop(); }

void Device::start() {
  if (running_) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  if (workers_ == 0) {
    thread_ = std::thread([this] {
      try {
        run_legacy_loop(&stop_requested_);
      } catch (...) {
        // Mirror the ThreadPool contract: capture, don't terminate.
        std::lock_guard lock(failure_mutex_);
        if (legacy_failure_ == nullptr) {
          legacy_failure_ = std::current_exception();
        }
        legacy_failed_.store(true, std::memory_order_release);
      }
    });
  } else {
    // A fresh pool per start(): ThreadPool drains and joins on destruction,
    // which is exactly the stop() contract.
    pool_ = std::make_unique<ThreadPool>(workers_);
    for (std::uint32_t worker = 0; worker < workers_; ++worker) {
      pool_->submit([this, worker] { run_shard(worker, &stop_requested_); });
    }
  }
  running_ = true;
}

void Device::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  // A worker sleeping inside an injected stall would make the join below
  // wait out the whole stall; orderly shutdown aborts in-flight stalls
  // (the fail point re-arms for the next fire, so other devices under
  // stall injection merely skip one beat).
  if (fail::Registry::instance().any_armed()) {
    fail::Registry::instance().cancel_stalls();
  }
  if (thread_.joinable()) thread_.join();
  if (pool_ != nullptr) {
    // Preserve a captured worker failure past the pool's destruction so
    // failure() keeps reporting it after the device is stopped.
    if (std::exception_ptr failure = pool_->failure(); failure != nullptr) {
      std::lock_guard lock(failure_mutex_);
      if (legacy_failure_ == nullptr) legacy_failure_ = failure;
      legacy_failed_.store(true, std::memory_order_release);
    }
    pool_.reset();
  }
  running_ = false;
}

std::exception_ptr Device::failure() const {
  if (pool_ != nullptr) {
    if (std::exception_ptr failure = pool_->failure(); failure != nullptr) {
      return failure;
    }
  }
  if (!legacy_failed_.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard lock(failure_mutex_);
  return legacy_failure_;
}

void Device::iterate_block(std::size_t index, std::size_t worker) {
  // Fault-injection site (scope = device id): a throw here simulates a
  // kernel fault and escapes to the worker pool; a stall spec hangs this
  // worker. Disarmed cost: one relaxed load.
  fail::maybe_fail("device.iterate", config_.device_id);
  SearchBlock& block = *blocks_[index];
  const auto maybe_target = targets_.poll(worker);
  if (!maybe_target) {
    target_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::add(m_target_misses_);
    if (obs::EventTracer* tracer = config_.telemetry.tracer;
        tracer != nullptr) {
      tracer->instant("target_miss", "device",
                      config_.telemetry.pid_base + config_.device_id + 1,
                      static_cast<std::uint32_t>(index));
    }
  }
  const std::uint64_t before = block.stats().flips;
  // With no fresh target the block continues from where it is: a
  // zero-distance straight search followed by the usual local search.
  solutions_.push(block.iterate(maybe_target ? *maybe_target : block.current()),
                  worker);
  const std::uint64_t iteration_flips = block.stats().flips - before;
  flips_.fetch_add(iteration_flips, std::memory_order_relaxed);
  iterations_.fetch_add(1, std::memory_order_relaxed);
  if (m_iterations_ != nullptr) {  // metrics attached
    m_iterations_->add(1);
    m_flips_->add(iteration_flips);
    m_iteration_flips_->observe(iteration_flips);
    m_block_flips_[index]->add(iteration_flips);
    m_block_iterations_[index]->add(1);
  }
}

void Device::step_all_blocks_once() {
  ABSQ_CHECK(!running_, "synchronous stepping while the device thread runs");
  for (std::size_t i = 0; i < blocks_.size(); ++i) iterate_block(i, i);
}

std::uint64_t Device::total_evaluated() const {
  return total_flips() * w_->size();
}

std::uint64_t Device::total_algorithm_switches() const {
  std::uint64_t total = 0;
  for (const auto& block : blocks_) total += block->algorithm_switches();
  return total;
}

void Device::run_legacy_loop(const std::atomic<bool>* stop_flag) {
  // Round-robin block schedule; each visit is one full Step 2–5 iteration.
  while (!stop_flag->load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (stop_flag->load(std::memory_order_relaxed)) return;
      iterate_block(i, /*worker=*/0);
    }
  }
}

void Device::run_shard(std::size_t worker, const std::atomic<bool>* stop_flag) {
  // Worker `worker` owns blocks worker, worker+W, worker+2W, … — a static
  // partition, so every block is touched by exactly one thread and the
  // per-block search state needs no locking.
  if (worker >= blocks_.size()) return;  // more workers than blocks
  while (!stop_flag->load(std::memory_order_relaxed)) {
    for (std::size_t i = worker; i < blocks_.size(); i += workers_) {
      if (stop_flag->load(std::memory_order_relaxed)) return;
      iterate_block(i, worker);
    }
  }
}

}  // namespace absq
