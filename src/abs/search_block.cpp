#include "abs/search_block.hpp"

#include "search/straight.hpp"
#include "util/check.hpp"

namespace absq {
namespace {

// Zero-vector start: E(0) = 0, Δ_i = W_ii (device Step 1), in the planned
// kernel form when one is supplied.
DeltaState make_block_state(const WeightMatrix& w,
                            const SearchBlock::Config& config) {
  if (config.kernel != nullptr) {
    ABSQ_CHECK(&config.kernel->dense() == &w,
               "kernel plan built for a different matrix");
    return DeltaState(*config.kernel);
  }
  return DeltaState(w);
}

}  // namespace

BitIndex SearchBlock::staggered_offset() const {
  // Stagger window offsets across blocks so co-scheduled blocks with equal
  // l do not walk identical flip sequences.
  return (config_.block_id * 97u) % w_->size();
}

std::unique_ptr<SelectionPolicy> SearchBlock::make_min_delta_policy() {
  if (config_.policy_prototype != nullptr) {
    current_window_ = 0;  // unknown for custom policies
    return config_.policy_prototype->clone();
  }
  BitIndex window = config_.window;
  if (!config_.adaptive_windows.empty()) {
    window = config_.adaptive_windows[ladder_index_];
  }
  current_window_ = window;
  return std::make_unique<WindowMinDeltaPolicy>(window, staggered_offset());
}

void SearchBlock::set_algorithm(portfolio::BlockAlgorithmKind kind) {
  if (kind == portfolio::BlockAlgorithmKind::kMinDelta) {
    auto algorithm =
        std::make_unique<portfolio::MinDeltaAlgorithm>(make_min_delta_policy());
    min_delta_ = algorithm.get();
    algorithm_ = std::move(algorithm);
  } else {
    min_delta_ = nullptr;
    current_window_ = 0;
    algorithm_ = portfolio::make_block_algorithm(
        kind, config_.algorithm_options, nullptr);
  }
  kind_ = kind;
}

SearchBlock::SearchBlock(const WeightMatrix& w, const Config& config)
    : w_(&w),
      config_(config),
      state_(make_block_state(w, config)),
      rng_(Rng(config.seed).split(config.block_id)) {
  ABSQ_CHECK(config.local_steps >= 1, "local_steps must be at least 1");
  if (config_.policy_prototype == nullptr &&
      !config_.adaptive_windows.empty()) {
    ABSQ_CHECK(config_.stagnation_limit >= 1,
               "stagnation_limit must be at least 1");
    // Start each block at its own ladder rung.
    ladder_index_ = config_.block_id % config_.adaptive_windows.size();
  }
  set_algorithm(config_.algorithm);
  stats_.ops += state_.matrix_reads();  // Step 1 initialization (diagonal)
  stats_.evaluated_solutions += state_.size() + 1;
}

void SearchBlock::adapt_on_stagnation(Energy reported_energy) {
  if (config_.adaptive_windows.empty() ||
      config_.policy_prototype != nullptr || min_delta_ == nullptr) {
    return;
  }
  if (!any_report_ || reported_energy < best_reported_) {
    best_reported_ = reported_energy;
    any_report_ = true;
    stagnant_iterations_ = 0;
    return;
  }
  if (++stagnant_iterations_ < config_.stagnation_limit) return;

  // Advance the ladder: a stuck cold block warms up (and vice versa).
  stagnant_iterations_ = 0;
  ++policy_switches_;
  ladder_index_ = (ladder_index_ + 1) % config_.adaptive_windows.size();
  current_window_ = config_.adaptive_windows[ladder_index_];
  min_delta_->set_policy(std::make_unique<WindowMinDeltaPolicy>(
      current_window_, staggered_offset()));
}

sim::ReportedSolution SearchBlock::iterate(const BitVector& target) {
  ABSQ_CHECK(target.size() == state_.size(), "target size mismatch");

  // Apply a pending controller reallocation before this iteration starts,
  // so the whole Step 4b phase runs one member.
  const std::uint8_t requested = requested_algorithm_.exchange(
      kNoAlgorithmRequest, std::memory_order_acq_rel);
  if (requested != kNoAlgorithmRequest) {
    const auto kind = static_cast<portfolio::BlockAlgorithmKind>(requested);
    if (kind != kind_) {
      set_algorithm(kind);
      ++algorithm_switches_;
    }
  }

  // Step 3: reset the incumbent so this iteration reports something new.
  tracker_.reset();

  const std::uint32_t trace_pid =
      config_.trace_pid_base + config_.device_id + 1;

  // Step 4a: straight search C → T (flip count = Hamming distance).
  {
    obs::TraceSpan span(config_.tracer, "straight", "search", trace_pid,
                        config_.block_id);
    const std::uint64_t flips_before = stats_.flips;
    stats_ += straight_search(state_, target, tracker_);
    span.set_arg("walk_flips",
                 static_cast<std::int64_t>(stats_.flips - flips_before));
  }

  // Step 4b: fixed-length local search from T, run by the active
  // portfolio member.
  {
    obs::TraceSpan span(config_.tracer, "local", "search", trace_pid,
                        config_.block_id);
    span.set_arg("flips", static_cast<std::int64_t>(config_.local_steps));
    algorithm_->step(state_, tracker_, stats_, rng_, config_.local_steps);
  }
  ++iterations_;

  // Step 5: report the iteration's best. A zero-distance straight search
  // with zero local steps cannot happen (local_steps >= 1), so the tracker
  // is always valid here.
  adapt_on_stagnation(tracker_.energy());
  return sim::ReportedSolution{tracker_.best(), tracker_.energy(),
                               config_.device_id, config_.block_id};
}

}  // namespace absq
