#include "abs/search_block.hpp"

#include "search/straight.hpp"
#include "util/check.hpp"

namespace absq {
namespace {

// Zero-vector start: E(0) = 0, Δ_i = W_ii (device Step 1), in the planned
// kernel form when one is supplied.
DeltaState make_block_state(const WeightMatrix& w,
                            const SearchBlock::Config& config) {
  if (config.kernel != nullptr) {
    ABSQ_CHECK(&config.kernel->dense() == &w,
               "kernel plan built for a different matrix");
    return DeltaState(*config.kernel);
  }
  return DeltaState(w);
}

}  // namespace

BitIndex SearchBlock::staggered_offset() const {
  // Stagger window offsets across blocks so co-scheduled blocks with equal
  // l do not walk identical flip sequences.
  return (config_.block_id * 97u) % w_->size();
}

SearchBlock::SearchBlock(const WeightMatrix& w, const Config& config)
    : w_(&w),
      config_(config),
      state_(make_block_state(w, config)),
      rng_(Rng(config.seed).split(config.block_id)) {
  ABSQ_CHECK(config.local_steps >= 1, "local_steps must be at least 1");
  if (config_.policy_prototype != nullptr) {
    policy_ = config_.policy_prototype->clone();
    current_window_ = 0;  // unknown for custom policies
  } else {
    BitIndex window = config_.window;
    if (!config_.adaptive_windows.empty()) {
      ABSQ_CHECK(config_.stagnation_limit >= 1,
                 "stagnation_limit must be at least 1");
      // Start each block at its own ladder rung.
      ladder_index_ = config_.block_id % config_.adaptive_windows.size();
      window = config_.adaptive_windows[ladder_index_];
    }
    policy_ =
        std::make_unique<WindowMinDeltaPolicy>(window, staggered_offset());
    current_window_ = window;
  }
  stats_.ops += state_.matrix_reads();  // Step 1 initialization (diagonal)
  stats_.evaluated_solutions += state_.size() + 1;
}

void SearchBlock::adapt_on_stagnation(Energy reported_energy) {
  if (config_.adaptive_windows.empty() ||
      config_.policy_prototype != nullptr) {
    return;
  }
  if (!any_report_ || reported_energy < best_reported_) {
    best_reported_ = reported_energy;
    any_report_ = true;
    stagnant_iterations_ = 0;
    return;
  }
  if (++stagnant_iterations_ < config_.stagnation_limit) return;

  // Advance the ladder: a stuck cold block warms up (and vice versa).
  stagnant_iterations_ = 0;
  ++policy_switches_;
  ladder_index_ = (ladder_index_ + 1) % config_.adaptive_windows.size();
  current_window_ = config_.adaptive_windows[ladder_index_];
  policy_ =
      std::make_unique<WindowMinDeltaPolicy>(current_window_,
                                             staggered_offset());
}

sim::ReportedSolution SearchBlock::iterate(const BitVector& target) {
  ABSQ_CHECK(target.size() == state_.size(), "target size mismatch");

  // Step 3: reset the incumbent so this iteration reports something new.
  tracker_.reset();

  const std::uint32_t trace_pid =
      config_.trace_pid_base + config_.device_id + 1;

  // Step 4a: straight search C → T (flip count = Hamming distance).
  {
    obs::TraceSpan span(config_.tracer, "straight", "search", trace_pid,
                        config_.block_id);
    const std::uint64_t flips_before = stats_.flips;
    stats_ += straight_search(state_, target, tracker_);
    span.set_arg("walk_flips",
                 static_cast<std::int64_t>(stats_.flips - flips_before));
  }

  // Step 4b: fixed-length forced-flip local search from T.
  {
    obs::TraceSpan span(config_.tracer, "local", "search", trace_pid,
                        config_.block_id);
    span.set_arg("flips", static_cast<std::int64_t>(config_.local_steps));
    for (std::uint64_t step = 0; step < config_.local_steps; ++step) {
      const BitIndex k = policy_->select(state_, rng_);
      const std::uint64_t reads_before = state_.matrix_reads();
      const auto outcome = state_.flip_tracked(k);
      ++stats_.flips;
      ++stats_.accepted;
      // Matrix reads actually paid: n dense, degree(k) sparse. The flip
      // still evaluates all n neighbours either way (Theorem 1), so under
      // the sparse kernel efficiency() exceeds the dense kernel's O(1).
      stats_.ops += state_.matrix_reads() - reads_before;
      stats_.evaluated_solutions += state_.size();
      if (tracker_.offer(state_.bits(), outcome.energy)) ++stats_.improvements;
      if (tracker_.offer_neighbor(state_.bits(), outcome.best_neighbor_bit,
                                  outcome.best_neighbor_energy)) {
        ++stats_.improvements;
      }
    }
  }
  ++iterations_;

  // Step 5: report the iteration's best. A zero-distance straight search
  // with zero local steps cannot happen (local_steps >= 1), so the tracker
  // is always valid here.
  adapt_on_stagnation(tracker_.energy());
  return sim::ReportedSolution{tracker_.best(), tracker_.energy(),
                               config_.device_id, config_.block_id};
}

}  // namespace absq
