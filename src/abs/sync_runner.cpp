#include "abs/sync_runner.hpp"

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace absq {

SyncAbsRunner::SyncAbsRunner(const WeightMatrix& w, AbsConfig config)
    : w_(&w),
      config_(std::move(config)),
      pool_(config_.pool_capacity),
      rng_(config_.seed) {
  ABSQ_CHECK(config_.num_devices >= 1, "need at least one device");
  // The deterministic runner predates Diverse ABS and keeps the single-pool
  // protocol; diverse configs need the full AbsSolver host loop.
  ABSQ_CHECK(!config_.portfolio.diverse(),
             "SyncAbsRunner does not support Diverse ABS configs "
             "(islands/portfolio/controller) — use AbsSolver");
  devices_.reserve(config_.num_devices);
  for (std::uint32_t d = 0; d < config_.num_devices; ++d) {
    DeviceConfig device_config = config_.device;
    device_config.device_id = d;
    device_config.seed = mix64(config_.seed ^ (d + 1));
    // Deterministic schedule: one mailbox shard, no worker threads, so the
    // round-based execution is bit-reproducible across machines regardless
    // of their core count.
    device_config.threads_per_device = 0;
    device_config.telemetry = config_.telemetry;
    devices_.push_back(std::make_unique<Device>(w, device_config));
  }
}

void SyncAbsRunner::ensure_started() {
  if (started_) return;
  started_ = true;
  pool_.initialize_random(w_->size(), rng_);
  if (config_.warm_start != nullptr) {
    for (std::size_t i = 0; i < config_.warm_start->size(); ++i) {
      const auto& entry = config_.warm_start->entry(i);
      ABSQ_CHECK(entry.bits.size() == w_->size(),
                 "warm-start pool is for a different instance size");
      (void)pool_.insert(entry.bits, entry.energy);
    }
  }
  for (auto& device : devices_) {
    for (std::uint32_t b = 0; b < device->block_count(); ++b) {
      const std::size_t index =
          config_.warm_start != nullptr && b < pool_.size()
              ? b
              : rng_.below(pool_.size());
      device->targets().push(pool_.entry(index).bits);
      ++targets_generated_;
    }
  }
}

void SyncAbsRunner::one_round(AbsResult& result) {
  obs::TraceSpan round_span(config_.telemetry.tracer, "ga_round", "host",
                            /*pid=*/0, /*tid=*/0);
  round_span.set_arg("round", static_cast<std::int64_t>(rounds_));
  for (auto& device : devices_) {
    device->step_all_blocks_once();
    auto arrivals = device->solutions().drain();
    for (auto& report : arrivals) {
      ++reports_received_;
      if (pool_.insert(report.bits, report.energy)) {
        ++reports_inserted_;
        if (result.best_trace.empty() ||
            report.energy < result.best_trace.back().second) {
          // Deterministic "time" axis: the round index.
          result.best_trace.emplace_back(static_cast<double>(rounds_),
                                         report.energy);
        }
      }
    }
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      device->targets().push(generate_target(pool_, config_.ga, rng_));
      ++targets_generated_;
    }
  }
  ++rounds_;
}

std::uint64_t SyncAbsRunner::lifetime_flips() const {
  std::uint64_t flips = 0;
  for (const auto& device : devices_) flips += device->total_flips();
  return flips;
}

AbsResult SyncAbsRunner::finalize(AbsResult result,
                                  std::uint64_t flips_before) const {
  ABSQ_CHECK(pool_.evaluated_count() > 0, "no device ever reported");
  result.best = pool_.best().bits;
  result.best_energy = pool_.best().energy;
  result.reports_received = reports_received_;
  result.reports_inserted = reports_inserted_;
  result.duplicates_rejected = pool_.duplicates_rejected();
  result.pool_evictions = pool_.evictions();
  result.targets_generated = targets_generated_;
  std::uint64_t flips = 0;
  for (const auto& device : devices_) {
    flips += device->total_flips();
    result.solutions_dropped += device->solutions().dropped();
    result.targets_dropped += device->targets().dropped();

    DeviceSummary summary;
    summary.device_id = device->config().device_id;
    summary.workers = device->worker_count();
    summary.flips = device->total_flips();
    summary.iterations = device->total_iterations();
    summary.reports = device->solutions().counter();
    summary.target_misses = device->target_misses();
    summary.targets_dropped = device->targets().dropped();
    summary.solutions_dropped = device->solutions().dropped();
    result.devices.push_back(summary);
  }
  result.total_flips = flips;
  result.evaluated_solutions = flips * w_->size();
  // The rate must be derived *after* the flip totals are known — the
  // callers only stamp result.seconds. total_flips is a lifetime figure
  // ("the result so far") while seconds covers only this call, so the
  // rate pairs the seconds with the flips committed *during* the call.
  result.search_rate =
      result.seconds > 0.0
          ? static_cast<double>((flips - flips_before) * w_->size()) /
                result.seconds
          : 0.0;
  return result;
}

AbsResult SyncAbsRunner::run_rounds(std::uint64_t rounds) {
  ensure_started();
  AbsResult result;
  const std::uint64_t flips_before = lifetime_flips();
  Stopwatch watch;
  for (std::uint64_t r = 0; r < rounds; ++r) one_round(result);
  result.seconds = watch.seconds();
  return finalize(std::move(result), flips_before);
}

AbsResult SyncAbsRunner::run_to_target(Energy target,
                                       std::uint64_t max_rounds) {
  ABSQ_CHECK(max_rounds >= 1, "max_rounds must be positive");
  ensure_started();
  AbsResult result;
  const std::uint64_t flips_before = lifetime_flips();
  Stopwatch watch;
  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    one_round(result);
    if (pool_.best_energy() <= target) {
      result.reached_target = true;
      break;
    }
  }
  result.seconds = watch.seconds();
  return finalize(std::move(result), flips_before);
}

}  // namespace absq
