#include "abs/solver.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <thread>

#include "ga/pool_io.hpp"
#include "obs/log.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace absq {
namespace {

/// Human-readable diagnosis of a captured exception.
std::string describe(const std::exception_ptr& failure) {
  try {
    std::rethrow_exception(failure);
  } catch (const std::exception& error) {
    return error.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

const char* to_string(DeviceHealth health) {
  switch (health) {
    case DeviceHealth::kHealthy: return "healthy";
    case DeviceHealth::kStalled: return "stalled";
    case DeviceHealth::kFailed: return "failed";
  }
  return "unknown";
}

AbsSolver::AbsSolver(const WeightMatrix& w, AbsConfig config)
    : w_(&w),
      config_(std::move(config)),
      pool_(config_.pool_capacity),
      rng_(config_.seed) {
  ABSQ_CHECK(config_.num_devices >= 1, "need at least one device");
  devices_.resize(config_.num_devices);
  for (std::uint32_t d = 0; d < config_.num_devices; ++d) {
    DeviceSlot& slot = devices_[d];
    slot.config = config_.device;
    slot.config.device_id = d;
    slot.config.seed = mix64(config_.seed ^ (d + 1));
    slot.config.telemetry = config_.telemetry;
    if (!slot.config.threads_per_device.has_value()) {
      // Auto: split the host's cores across the simulated devices.
      slot.config.threads_per_device = std::max(
          1u, std::thread::hardware_concurrency() / config_.num_devices);
    }
    slot.device = make_device(d, /*incarnation=*/0);
  }

  for (const auto& kv : config_.telemetry.labels.pairs()) {
    if (kv.first == "job") {
      // Best effort: a non-numeric job label leaves log lines unstamped.
      try {
        log_job_ = std::stoll(kv.second);
      } catch (const std::exception&) {
      }
    }
  }

  if (obs::MetricsRegistry* registry = config_.telemetry.metrics;
      registry != nullptr) {
    const obs::Labels& base = config_.telemetry.labels;
    m_reports_received_ =
        &registry->counter("absq_reports_received_total", base);
    m_reports_inserted_ =
        &registry->counter("absq_reports_inserted_total", base);
    m_duplicates_ =
        &registry->counter("absq_pool_duplicates_rejected_total", base);
    m_evictions_ = &registry->counter("absq_pool_evictions_total", base);
    m_targets_generated_ =
        &registry->counter("absq_targets_generated_total", base);
    m_improvements_ =
        &registry->counter("absq_incumbent_improvements_total", base);
    m_pool_best_energy_ = &registry->gauge("absq_pool_best_energy", base);
    m_pool_evaluated_ = &registry->gauge("absq_pool_evaluated", base);
    m_device_failures_ =
        &registry->counter("absq_device_failures_total", base);
    m_device_restarts_ =
        &registry->counter("absq_device_restarts_total", base);
    m_checkpoints_ =
        &registry->counter("absq_checkpoints_written_total", base);
    m_targets_dropped_ = &registry->counter(
        "absq_mailbox_dropped_total",
        config_.telemetry.with({{"mailbox", "targets"}}));
    m_solutions_dropped_ = &registry->counter(
        "absq_mailbox_dropped_total",
        config_.telemetry.with({{"mailbox", "solutions"}}));
    m_device_health_.reserve(devices_.size());
    for (std::uint32_t d = 0; d < config_.num_devices; ++d) {
      m_device_health_.push_back(&registry->gauge(
          "absq_device_health",
          config_.telemetry.with({{"device", std::to_string(d)}})));
    }
  }
}

AbsSolver::~AbsSolver() {
  for (auto& slot : devices_) {
    if (slot.device != nullptr) slot.device->stop();
  }
}

std::unique_ptr<Device> AbsSolver::make_device(std::size_t slot_index,
                                               std::uint32_t incarnation) {
  DeviceConfig device_config = devices_[slot_index].config;
  if (incarnation > 0) {
    // A restarted device must not replay the crashed incarnation's stream.
    device_config.seed =
        mix64(device_config.seed ^ (0x9e3779b97f4a7c15ULL * incarnation));
  }
  return std::make_unique<Device>(*w_, device_config);
}

void AbsSolver::retire_device_counters(DeviceSlot& slot) {
  slot.retired_flips += slot.device->total_flips();
  slot.retired_iterations += slot.device->total_iterations();
  slot.retired_reports += slot.device->solutions().counter();
  slot.retired_target_misses += slot.device->target_misses();
  slot.retired_targets_dropped += slot.device->targets().dropped();
  slot.retired_solutions_dropped += slot.device->solutions().dropped();
}

std::uint64_t AbsSolver::flips_across_devices() const {
  std::uint64_t total = 0;
  for (const auto& slot : devices_) {
    total += slot.retired_flips + slot.device->total_flips();
  }
  return total;
}

void AbsSolver::sync_pool_metrics() {
  if (m_reports_inserted_ == nullptr) return;
  m_reports_inserted_->add(pool_.insertions() - synced_inserted_);
  m_duplicates_->add(pool_.duplicates_rejected() - synced_duplicates_);
  m_evictions_->add(pool_.evictions() - synced_evictions_);
  synced_inserted_ = pool_.insertions();
  synced_duplicates_ = pool_.duplicates_rejected();
  synced_evictions_ = pool_.evictions();
  // Mailbox overflow totals, delta-synced the same way (the mailboxes'
  // dropped() counters are relaxed atomics, safe to read from the host).
  std::uint64_t targets_dropped = 0;
  std::uint64_t solutions_dropped = 0;
  for (const auto& slot : devices_) {
    targets_dropped +=
        slot.retired_targets_dropped + slot.device->targets().dropped();
    solutions_dropped +=
        slot.retired_solutions_dropped + slot.device->solutions().dropped();
  }
  m_targets_dropped_->add(targets_dropped - synced_targets_dropped_);
  m_solutions_dropped_->add(solutions_dropped - synced_solutions_dropped_);
  synced_targets_dropped_ = targets_dropped;
  synced_solutions_dropped_ = solutions_dropped;
  const Energy best = pool_.best_energy();
  if (best != kUnevaluated) {
    m_pool_best_energy_->set(static_cast<double>(best));
  }
  m_pool_evaluated_->set(static_cast<double>(pool_.evaluated_count()));
}

void AbsSolver::salvage_drain(DeviceSlot& slot, AbsResult& result,
                              double now) {
  // Reports already in the mailbox survive their device's death; no
  // replacement targets are bred — the device is out of the rotation.
  for (auto& report : slot.device->solutions().drain()) {
    ++result.reports_received;
    obs::add(m_reports_received_);
    const Energy energy = report.energy;
    if (pool_.insert(report.bits, energy)) {
      ++result.reports_inserted;
      if (result.best_trace.empty() ||
          energy < result.best_trace.back().second) {
        result.best_trace.emplace_back(now, energy);
        obs::add(m_improvements_);
      }
    }
  }
  slot.seen_counter = slot.device->solutions().counter();
}

void AbsSolver::quarantine(std::size_t slot_index, DeviceHealth health,
                           std::string diagnosis, AbsResult& result,
                           double now) {
  DeviceSlot& slot = devices_[slot_index];
  slot.health = health;
  slot.failure = std::move(diagnosis);
  slot.quarantined_at = now;
  // Stop without joining: the host must stay responsive even if the
  // device's threads are hung. The join happens at run end (Device::stop),
  // by which time injected stalls are cancelled.
  slot.device->request_stop();
  salvage_drain(slot, result, now);
  obs::add(m_device_failures_);
  if (!m_device_health_.empty()) {
    m_device_health_[slot_index]->set(static_cast<double>(health));
  }
  obs::log_warn("solver", "device quarantined",
                {{"device", static_cast<std::int64_t>(slot_index)},
                 {"health", to_string(health)},
                 {"diagnosis", slot.failure}},
                log_job_);
  if (obs::EventTracer* tracer = config_.telemetry.tracer;
      tracer != nullptr) {
    tracer->instant("device_failed", "host", config_.telemetry.pid_base,
                    /*tid=*/static_cast<std::uint32_t>(slot_index), "health",
                    static_cast<std::int64_t>(health));
  }
}

void AbsSolver::poll_device_health(AbsResult& result, double now) {
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    DeviceSlot& slot = devices_[d];
    if (slot.health == DeviceHealth::kHealthy) {
      // A captured exception is unambiguous: quarantine immediately.
      if (std::exception_ptr failure = slot.device->failure();
          failure != nullptr) {
        quarantine(d, DeviceHealth::kFailed,
                   "device worker threw: " + describe(failure), result, now);
        continue;
      }
      // Stall detection (opt-in): the iteration counter is the heartbeat.
      if (config_.watchdog.stall_grace_seconds > 0.0) {
        const std::uint64_t iterations = slot.device->total_iterations();
        if (iterations != slot.last_iterations) {
          slot.last_iterations = iterations;
          slot.last_progress_time = now;
        } else if (now - slot.last_progress_time >
                   config_.watchdog.stall_grace_seconds) {
          std::string diagnosis = "device stalled: no iteration for ";
          diagnosis += std::to_string(now - slot.last_progress_time);
          diagnosis += " s (grace ";
          diagnosis +=
              std::to_string(config_.watchdog.stall_grace_seconds);
          diagnosis += " s)";
          quarantine(d, DeviceHealth::kStalled, std::move(diagnosis), result,
                     now);
        }
      }
      continue;
    }

    // Bounded restart policy: failed devices only. A stalled device's
    // threads may be hung, and re-creating the slot requires joining the
    // old incarnation — so stalls stay quarantined.
    if (slot.health == DeviceHealth::kFailed &&
        slot.restarts < config_.watchdog.max_restarts &&
        now - slot.quarantined_at >=
            config_.watchdog.restart_backoff_seconds) {
      slot.device->stop();  // workers are idle after the failure; joins fast
      salvage_drain(slot, result, now);
      retire_device_counters(slot);

      ++slot.restarts;
      slot.device = make_device(d, ++slot.incarnations);
      slot.health = DeviceHealth::kHealthy;
      slot.failure.clear();
      slot.seen_counter = 0;
      slot.last_iterations = 0;
      slot.last_progress_time = now;
      slot.device->start();
      for (std::uint32_t b = 0; b < slot.device->block_count(); ++b) {
        slot.device->targets().push(
            pool_.entry(rng_.below(pool_.size())).bits);
        ++result.targets_generated;
      }
      obs::add(m_targets_generated_, slot.device->block_count());
      obs::add(m_device_restarts_);
      if (!m_device_health_.empty()) {
        m_device_health_[d]->set(
            static_cast<double>(DeviceHealth::kHealthy));
      }
      obs::log_info("solver", "device restarted",
                    {{"device", static_cast<std::int64_t>(d)},
                     {"restart", static_cast<std::int64_t>(slot.restarts)},
                     {"incarnation",
                      static_cast<std::int64_t>(slot.incarnations)}},
                    log_job_);
      if (obs::EventTracer* tracer = config_.telemetry.tracer;
          tracer != nullptr) {
        tracer->instant("device_restarted", "host",
                        config_.telemetry.pid_base,
                        /*tid=*/static_cast<std::uint32_t>(d), "restart",
                        slot.restarts);
      }
    }
  }
}

void AbsSolver::write_run_checkpoint(AbsResult& result, double now) {
  RunCheckpoint checkpoint;
  checkpoint.seed = config_.seed;
  checkpoint.elapsed_seconds = config_.elapsed_offset_seconds + now;
  checkpoint.device_flips.reserve(devices_.size());
  for (const auto& slot : devices_) {
    checkpoint.device_flips.push_back(slot.retired_flips +
                                      slot.device->total_flips());
  }
  checkpoint.pool = std::make_shared<const SolutionPool>(pool_);
  try {
    write_checkpoint_file(config_.checkpoint_path, checkpoint);
    ++result.checkpoints_written;
    obs::add(m_checkpoints_);
    if (obs::EventTracer* tracer = config_.telemetry.tracer;
        tracer != nullptr) {
      tracer->instant("checkpoint", "host", config_.telemetry.pid_base,
                      /*tid=*/0, "written",
                      static_cast<std::int64_t>(result.checkpoints_written));
    }
    if (config_.on_checkpoint) {
      config_.on_checkpoint(result.checkpoints_written);
    }
  } catch (const std::exception& error) {
    // Durability degrades; the search must not. The previous snapshot is
    // still intact (atomic rename), so keep running and count the miss.
    ++result.checkpoints_failed;
    obs::log_warn("solver", "checkpoint write failed",
                  {{"path", config_.checkpoint_path},
                   {"error", error.what()}},
                  log_job_);
  }
}

AbsResult AbsSolver::run(const StopCriteria& stop) {
  ABSQ_CHECK(stop.bounded(),
             "at least one stop criterion must be set or the run never ends");

  AbsResult result;
  const std::uint64_t flips_at_start = flips_across_devices();

  // Revive slots left unhealthy by a previous run: the device object may
  // hold dead workers, so it is rebuilt from the weight matrix.
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    DeviceSlot& slot = devices_[d];
    slot.restarts = 0;
    if (slot.health != DeviceHealth::kHealthy) {
      slot.device->stop();
      retire_device_counters(slot);
      slot.device = make_device(d, ++slot.incarnations);
      slot.health = DeviceHealth::kHealthy;
      slot.failure.clear();
      if (!m_device_health_.empty()) {
        m_device_health_[d]->set(
            static_cast<double>(DeviceHealth::kHealthy));
      }
    }
  }

  // Host Step 1: random pool, energies unknown; stock the target buffers
  // with the random population so every block starts on GA-chosen ground.
  pool_.initialize_random(w_->size(), rng_);
  synced_inserted_ = 0;
  synced_duplicates_ = 0;
  synced_evictions_ = 0;
  obs::EventTracer* const tracer = config_.telemetry.tracer;
  if (config_.warm_start != nullptr) {
    for (std::size_t i = 0; i < config_.warm_start->size(); ++i) {
      const auto& entry = config_.warm_start->entry(i);
      ABSQ_CHECK(entry.bits.size() == w_->size(),
                 "warm-start pool is for a different instance size");
      (void)pool_.insert(entry.bits, entry.energy);
    }
  }
  for (auto& slot : devices_) {
    Device& device = *slot.device;
    // One target per resident block; blocks without a target continue from
    // their current solution, so underfill is benign. With a warm start,
    // its entries (sorted best-first in the pool) go out first.
    for (std::uint32_t b = 0; b < device.block_count(); ++b) {
      result.targets_generated += 1;
      const std::size_t index =
          config_.warm_start != nullptr && b < pool_.size()
              ? b
              : rng_.below(pool_.size());
      device.targets().push(pool_.entry(index).bits);
    }
    obs::add(m_targets_generated_, device.block_count());
  }

  Stopwatch watch;
  for (auto& slot : devices_) {
    slot.device->start();
    // Zero (not the current counter value): on a reused solver the first
    // poll then drains leftovers exactly as the pre-watchdog host did.
    slot.seen_counter = 0;
    slot.last_iterations = slot.device->total_iterations();
    slot.last_progress_time = 0.0;
  }

  const bool checkpointing = !config_.checkpoint_path.empty();
  double next_checkpoint = config_.checkpoint_interval_seconds;
  double next_snapshot = config_.snapshot_interval_seconds;
  double last_snapshot_time = 0.0;
  std::uint64_t last_snapshot_flips = 0;
  bool done = false;
  while (!done) {
    bool any_news = false;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      DeviceSlot& slot = devices_[d];
      if (slot.health != DeviceHealth::kHealthy) continue;  // quarantined
      // Host Step 2: poll the global counter; drain only when it moved.
      const std::uint64_t counter = slot.device->solutions().counter();
      if (counter == slot.seen_counter) continue;
      slot.seen_counter = counter;
      any_news = true;

      // One GA round for device d: drain, insert, breed replacements.
      obs::TraceSpan round_span(tracer, "ga_round", "host",
                                config_.telemetry.pid_base,
                                /*tid=*/static_cast<std::uint32_t>(d));

      // Host Step 3: insert arrivals into the pool.
      auto arrivals = slot.device->solutions().drain();
      round_span.set_arg("arrivals",
                         static_cast<std::int64_t>(arrivals.size()));
      obs::add(m_reports_received_, arrivals.size());
      for (auto& report : arrivals) {
        ++result.reports_received;
        const Energy energy = report.energy;
        if (pool_.insert(report.bits, energy)) {
          ++result.reports_inserted;
          if (result.best_trace.empty() ||
              energy < result.best_trace.back().second) {
            result.best_trace.emplace_back(watch.seconds(), energy);
            obs::add(m_improvements_);
            if (tracer != nullptr) {
              tracer->instant("incumbent", "host", config_.telemetry.pid_base,
                              /*tid=*/static_cast<std::uint32_t>(d), "energy",
                              energy);
            }
          }
        }
      }

      // Host Step 4: breed as many fresh targets as solutions arrived.
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        slot.device->targets().push(generate_target(pool_, config_.ga, rng_));
        ++result.targets_generated;
      }
      obs::add(m_targets_generated_, arrivals.size());
      if (tracer != nullptr && !arrivals.empty()) {
        tracer->instant("target_push", "host", config_.telemetry.pid_base,
                        /*tid=*/static_cast<std::uint32_t>(d), "targets",
                        static_cast<std::int64_t>(arrivals.size()));
      }
      sync_pool_metrics();
    }

    // Watchdog: failure capture, stall detection, bounded restarts.
    poll_device_health(result, watch.seconds());

    // Periodic observation.
    if (config_.snapshot_interval_seconds > 0.0) {
      const double now = watch.seconds();
      if (now >= next_snapshot) {
        const std::uint64_t flips = flips_across_devices() - flips_at_start;
        RunSnapshot snapshot;
        snapshot.seconds = now;
        snapshot.best_energy = pool_.best_energy();
        snapshot.pool_evaluated = pool_.evaluated_count();
        snapshot.total_flips = flips;
        // An empty observation window (first snapshot of a continuation,
        // or a poll racing the grid) yields NaN, not a nonsense rate.
        const double window = now - last_snapshot_time;
        snapshot.window_rate =
            window > 0.0 ? static_cast<double>(flips - last_snapshot_flips) *
                               w_->size() / window
                         : std::numeric_limits<double>::quiet_NaN();
        if (tracer != nullptr) {
          tracer->instant("snapshot", "host", config_.telemetry.pid_base,
                          /*tid=*/0, "flips",
                          static_cast<std::int64_t>(flips));
        }
        result.snapshots.push_back(snapshot);
        last_snapshot_time = now;
        last_snapshot_flips = flips;
        // Advance on the fixed grid so a late poll does not shift the
        // cadence permanently; skip intervals already missed rather than
        // emitting a burst of catch-up snapshots.
        while (next_snapshot <= now) {
          next_snapshot += config_.snapshot_interval_seconds;
        }
      }
    }

    // Periodic crash-safe checkpoint (same fixed-grid cadence).
    if (checkpointing && config_.checkpoint_interval_seconds > 0.0) {
      const double now = watch.seconds();
      if (now >= next_checkpoint) {
        write_run_checkpoint(result, now);
        while (next_checkpoint <= now) {
          next_checkpoint += config_.checkpoint_interval_seconds;
        }
      }
    }

    // Stop checks.
    if (stop_requested_.exchange(false)) {
      result.cancelled = true;
      done = true;
    }
    if (stop.target_energy.has_value() &&
        pool_.best_energy() <= *stop.target_energy) {
      result.reached_target = true;
      done = true;
    }
    if (stop.time_limit_seconds > 0.0 &&
        watch.seconds() >= stop.time_limit_seconds) {
      done = true;
    }
    if (stop.max_flips > 0 &&
        flips_across_devices() - flips_at_start >= stop.max_flips) {
      done = true;
    }

    // Degraded-mode floor: when every device is quarantined and none can
    // be restarted, waiting out the clock is pointless.
    if (!done) {
      const bool any_alive_or_restartable = std::any_of(
          devices_.begin(), devices_.end(), [this](const DeviceSlot& slot) {
            return slot.health == DeviceHealth::kHealthy ||
                   (slot.health == DeviceHealth::kFailed &&
                    slot.restarts < config_.watchdog.max_restarts);
          });
      if (!any_alive_or_restartable) done = true;
    }

    if (!done && !any_news) {
      // Nothing arrived: yield briefly instead of spinning on the counters
      // (the cudaMemcpyAsync cadence of the paper's host).
      std::this_thread::yield();
    }
  }

  for (auto& slot : devices_) slot.device->stop();
  result.seconds = watch.seconds();

  // Final drain so reports in flight at stop time are not lost.
  for (auto& slot : devices_) {
    for (auto& report : slot.device->solutions().drain()) {
      ++result.reports_received;
      obs::add(m_reports_received_);
      if (pool_.insert(report.bits, report.energy)) ++result.reports_inserted;
    }
    result.solutions_dropped += slot.retired_solutions_dropped +
                                slot.device->solutions().dropped();
    result.targets_dropped +=
        slot.retired_targets_dropped + slot.device->targets().dropped();
  }
  sync_pool_metrics();
  result.duplicates_rejected = pool_.duplicates_rejected();
  result.pool_evictions = pool_.evictions();
  if (stop.target_energy.has_value() &&
      pool_.best_energy() <= *stop.target_energy) {
    result.reached_target = true;
  }

  if (pool_.evaluated_count() == 0) {
    // Nothing was ever reported. If that is because every device died,
    // surface the original fault rather than a misleading configuration
    // hint.
    for (const auto& slot : devices_) {
      if (slot.health == DeviceHealth::kFailed) {
        if (std::exception_ptr failure = slot.device->failure();
            failure != nullptr) {
          std::rethrow_exception(failure);
        }
        ABSQ_CHECK(false, "all devices failed before any report: "
                              << slot.failure);
      }
    }
  }
  ABSQ_CHECK(pool_.evaluated_count() > 0,
             "run ended before any device reported — raise the time limit");
  for (auto& slot : devices_) {
    Device& device = *slot.device;
    DeviceSummary summary;
    summary.device_id = slot.config.device_id;
    summary.workers = device.worker_count();
    summary.flips = slot.retired_flips + device.total_flips();
    summary.iterations = slot.retired_iterations + device.total_iterations();
    summary.reports = slot.retired_reports + device.solutions().counter();
    summary.target_misses =
        slot.retired_target_misses + device.target_misses();
    summary.targets_dropped =
        slot.retired_targets_dropped + device.targets().dropped();
    summary.solutions_dropped =
        slot.retired_solutions_dropped + device.solutions().dropped();
    summary.health = slot.health;
    summary.restarts = slot.restarts;
    summary.failure = slot.failure;
    if (slot.health != DeviceHealth::kHealthy) {
      result.failed_devices.push_back(slot.config.device_id);
    }
    result.devices.push_back(summary);
  }
  result.best = pool_.best().bits;
  result.best_energy = pool_.best().energy;
  result.total_flips = flips_across_devices() - flips_at_start;
  result.evaluated_solutions = result.total_flips * w_->size();
  result.search_rate = result.seconds > 0.0
                           ? static_cast<double>(result.evaluated_solutions) /
                                 result.seconds
                           : 0.0;

  // Graceful-shutdown checkpoint: a cancelled (SIGINT) or completed run
  // leaves a resumable snapshot behind.
  if (checkpointing) write_run_checkpoint(result, result.seconds);
  return result;
}

}  // namespace absq
