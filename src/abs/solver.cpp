#include "abs/solver.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace absq {

AbsSolver::AbsSolver(const WeightMatrix& w, AbsConfig config)
    : w_(&w),
      config_(std::move(config)),
      pool_(config_.pool_capacity),
      rng_(config_.seed) {
  ABSQ_CHECK(config_.num_devices >= 1, "need at least one device");
  devices_.reserve(config_.num_devices);
  for (std::uint32_t d = 0; d < config_.num_devices; ++d) {
    DeviceConfig device_config = config_.device;
    device_config.device_id = d;
    device_config.seed = mix64(config_.seed ^ (d + 1));
    device_config.telemetry = config_.telemetry;
    if (!device_config.threads_per_device.has_value()) {
      // Auto: split the host's cores across the simulated devices.
      device_config.threads_per_device = std::max(
          1u, std::thread::hardware_concurrency() / config_.num_devices);
    }
    devices_.push_back(std::make_unique<Device>(w, device_config));
  }

  if (obs::MetricsRegistry* registry = config_.telemetry.metrics;
      registry != nullptr) {
    m_reports_received_ = &registry->counter("absq_reports_received_total");
    m_reports_inserted_ = &registry->counter("absq_reports_inserted_total");
    m_duplicates_ =
        &registry->counter("absq_pool_duplicates_rejected_total");
    m_evictions_ = &registry->counter("absq_pool_evictions_total");
    m_targets_generated_ = &registry->counter("absq_targets_generated_total");
    m_improvements_ =
        &registry->counter("absq_incumbent_improvements_total");
    m_pool_best_energy_ = &registry->gauge("absq_pool_best_energy");
    m_pool_evaluated_ = &registry->gauge("absq_pool_evaluated");
  }
}

AbsSolver::~AbsSolver() {
  for (auto& device : devices_) device->stop();
}

std::uint64_t AbsSolver::flips_across_devices() const {
  std::uint64_t total = 0;
  for (const auto& device : devices_) total += device->total_flips();
  return total;
}

void AbsSolver::sync_pool_metrics() {
  if (m_reports_inserted_ == nullptr) return;
  m_reports_inserted_->add(pool_.insertions() - synced_inserted_);
  m_duplicates_->add(pool_.duplicates_rejected() - synced_duplicates_);
  m_evictions_->add(pool_.evictions() - synced_evictions_);
  synced_inserted_ = pool_.insertions();
  synced_duplicates_ = pool_.duplicates_rejected();
  synced_evictions_ = pool_.evictions();
  const Energy best = pool_.best_energy();
  if (best != kUnevaluated) {
    m_pool_best_energy_->set(static_cast<double>(best));
  }
  m_pool_evaluated_->set(static_cast<double>(pool_.evaluated_count()));
}

AbsResult AbsSolver::run(const StopCriteria& stop) {
  ABSQ_CHECK(stop.bounded(),
             "at least one stop criterion must be set or the run never ends");

  AbsResult result;
  const std::uint64_t flips_at_start = flips_across_devices();

  // Host Step 1: random pool, energies unknown; stock the target buffers
  // with the random population so every block starts on GA-chosen ground.
  pool_.initialize_random(w_->size(), rng_);
  synced_inserted_ = 0;
  synced_duplicates_ = 0;
  synced_evictions_ = 0;
  obs::EventTracer* const tracer = config_.telemetry.tracer;
  if (config_.warm_start != nullptr) {
    for (std::size_t i = 0; i < config_.warm_start->size(); ++i) {
      const auto& entry = config_.warm_start->entry(i);
      ABSQ_CHECK(entry.bits.size() == w_->size(),
                 "warm-start pool is for a different instance size");
      (void)pool_.insert(entry.bits, entry.energy);
    }
  }
  for (auto& device : devices_) {
    // One target per resident block; blocks without a target continue from
    // their current solution, so underfill is benign. With a warm start,
    // its entries (sorted best-first in the pool) go out first.
    for (std::uint32_t b = 0; b < device->block_count(); ++b) {
      result.targets_generated += 1;
      const std::size_t index =
          config_.warm_start != nullptr && b < pool_.size()
              ? b
              : rng_.below(pool_.size());
      device->targets().push(pool_.entry(index).bits);
    }
    obs::add(m_targets_generated_, device->block_count());
  }

  Stopwatch watch;
  for (auto& device : devices_) device->start();

  std::vector<std::uint64_t> seen_counters(devices_.size(), 0);
  double next_snapshot = config_.snapshot_interval_seconds;
  double last_snapshot_time = 0.0;
  std::uint64_t last_snapshot_flips = 0;
  bool done = false;
  while (!done) {
    bool any_news = false;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      // Host Step 2: poll the global counter; drain only when it moved.
      const std::uint64_t counter = devices_[d]->solutions().counter();
      if (counter == seen_counters[d]) continue;
      seen_counters[d] = counter;
      any_news = true;

      // One GA round for device d: drain, insert, breed replacements.
      obs::TraceSpan round_span(tracer, "ga_round", "host", /*pid=*/0,
                                /*tid=*/static_cast<std::uint32_t>(d));

      // Host Step 3: insert arrivals into the pool.
      auto arrivals = devices_[d]->solutions().drain();
      round_span.set_arg("arrivals",
                         static_cast<std::int64_t>(arrivals.size()));
      obs::add(m_reports_received_, arrivals.size());
      for (auto& report : arrivals) {
        ++result.reports_received;
        const Energy energy = report.energy;
        if (pool_.insert(report.bits, energy)) {
          ++result.reports_inserted;
          if (result.best_trace.empty() ||
              energy < result.best_trace.back().second) {
            result.best_trace.emplace_back(watch.seconds(), energy);
            obs::add(m_improvements_);
            if (tracer != nullptr) {
              tracer->instant("incumbent", "host", /*pid=*/0,
                              /*tid=*/static_cast<std::uint32_t>(d), "energy",
                              energy);
            }
          }
        }
      }

      // Host Step 4: breed as many fresh targets as solutions arrived.
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        devices_[d]->targets().push(generate_target(pool_, config_.ga, rng_));
        ++result.targets_generated;
      }
      obs::add(m_targets_generated_, arrivals.size());
      if (tracer != nullptr && !arrivals.empty()) {
        tracer->instant("target_push", "host", /*pid=*/0,
                        /*tid=*/static_cast<std::uint32_t>(d), "targets",
                        static_cast<std::int64_t>(arrivals.size()));
      }
      sync_pool_metrics();
    }

    // Periodic observation.
    if (config_.snapshot_interval_seconds > 0.0) {
      const double now = watch.seconds();
      if (now >= next_snapshot) {
        const std::uint64_t flips = flips_across_devices() - flips_at_start;
        RunSnapshot snapshot;
        snapshot.seconds = now;
        snapshot.best_energy = pool_.best_energy();
        snapshot.pool_evaluated = pool_.evaluated_count();
        snapshot.total_flips = flips;
        // An empty observation window (first snapshot of a continuation,
        // or a poll racing the grid) yields NaN, not a nonsense rate.
        const double window = now - last_snapshot_time;
        snapshot.window_rate =
            window > 0.0 ? static_cast<double>(flips - last_snapshot_flips) *
                               w_->size() / window
                         : std::numeric_limits<double>::quiet_NaN();
        if (tracer != nullptr) {
          tracer->instant("snapshot", "host", /*pid=*/0, /*tid=*/0, "flips",
                          static_cast<std::int64_t>(flips));
        }
        result.snapshots.push_back(snapshot);
        last_snapshot_time = now;
        last_snapshot_flips = flips;
        // Advance on the fixed grid so a late poll does not shift the
        // cadence permanently; skip intervals already missed rather than
        // emitting a burst of catch-up snapshots.
        while (next_snapshot <= now) {
          next_snapshot += config_.snapshot_interval_seconds;
        }
      }
    }

    // Stop checks.
    if (stop_requested_.exchange(false)) {
      result.cancelled = true;
      done = true;
    }
    if (stop.target_energy.has_value() &&
        pool_.best_energy() <= *stop.target_energy) {
      result.reached_target = true;
      done = true;
    }
    if (stop.time_limit_seconds > 0.0 &&
        watch.seconds() >= stop.time_limit_seconds) {
      done = true;
    }
    if (stop.max_flips > 0 &&
        flips_across_devices() - flips_at_start >= stop.max_flips) {
      done = true;
    }
    if (!done && !any_news) {
      // Nothing arrived: yield briefly instead of spinning on the counters
      // (the cudaMemcpyAsync cadence of the paper's host).
      std::this_thread::yield();
    }
  }

  for (auto& device : devices_) device->stop();
  result.seconds = watch.seconds();

  // Final drain so reports in flight at stop time are not lost.
  for (auto& device : devices_) {
    for (auto& report : device->solutions().drain()) {
      ++result.reports_received;
      obs::add(m_reports_received_);
      if (pool_.insert(report.bits, report.energy)) ++result.reports_inserted;
    }
    result.solutions_dropped += device->solutions().dropped();
    result.targets_dropped += device->targets().dropped();
  }
  sync_pool_metrics();
  result.duplicates_rejected = pool_.duplicates_rejected();
  result.pool_evictions = pool_.evictions();
  if (stop.target_energy.has_value() &&
      pool_.best_energy() <= *stop.target_energy) {
    result.reached_target = true;
  }

  ABSQ_CHECK(pool_.evaluated_count() > 0,
             "run ended before any device reported — raise the time limit");
  for (const auto& device : devices_) {
    DeviceSummary summary;
    summary.device_id = device->config().device_id;
    summary.workers = device->worker_count();
    summary.flips = device->total_flips();
    summary.iterations = device->total_iterations();
    summary.reports = device->solutions().counter();
    summary.target_misses = device->target_misses();
    summary.targets_dropped = device->targets().dropped();
    summary.solutions_dropped = device->solutions().dropped();
    result.devices.push_back(summary);
  }
  result.best = pool_.best().bits;
  result.best_energy = pool_.best().energy;
  result.total_flips = flips_across_devices() - flips_at_start;
  result.evaluated_solutions = result.total_flips * w_->size();
  result.search_rate = result.seconds > 0.0
                           ? static_cast<double>(result.evaluated_solutions) /
                                 result.seconds
                           : 0.0;
  return result;
}

}  // namespace absq
