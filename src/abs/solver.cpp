#include "abs/solver.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <thread>

#include "ga/pool_io.hpp"
#include "obs/log.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace absq {
namespace {

/// Human-readable diagnosis of a captured exception.
std::string describe(const std::exception_ptr& failure) {
  try {
    std::rethrow_exception(failure);
  } catch (const std::exception& error) {
    return error.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

const char* to_string(DeviceHealth health) {
  switch (health) {
    case DeviceHealth::kHealthy: return "healthy";
    case DeviceHealth::kStalled: return "stalled";
    case DeviceHealth::kFailed: return "failed";
  }
  return "unknown";
}

AbsSolver::AbsSolver(const WeightMatrix& w, AbsConfig config)
    : w_(&w),
      config_(std::move(config)),
      pool_(config_.pool_capacity),
      rng_(config_.seed) {
  ABSQ_CHECK(config_.num_devices >= 1, "need at least one device");

  // Diverse ABS: build the island pools and the (island, algorithm)
  // controller before the devices, so the initial block striping can be
  // baked into every device's algorithm schedule.
  diverse_ = config_.portfolio.diverse();
  if (diverse_) {
    portfolio::IslandSet::Config island_config;
    island_config.islands = config_.portfolio.islands;
    island_config.pool_capacity = config_.pool_capacity;
    island_config.ga = config_.ga;
    island_config.diversify_ga = config_.portfolio.diversify_ga;
    island_config.migration_interval =
        config_.portfolio.islands > 1
            ? config_.portfolio.effective_migration_interval()
            : 0;
    island_config.migration_k = config_.portfolio.migration_k;
    island_config.seed = config_.seed;
    island_config.telemetry = config_.telemetry;
    islands_ = std::make_unique<portfolio::IslandSet>(island_config);

    portfolio::AdaptiveController::Config controller_config;
    controller_config.islands = config_.portfolio.islands;
    controller_config.algorithms = config_.portfolio.algorithm_list();
    controller_config.enabled = config_.portfolio.controller;
    controller_config.credit_decay = config_.portfolio.credit_decay;
    controller_config.softmax_temperature =
        config_.portfolio.softmax_temperature;
    controller_config.exploration_floor = config_.portfolio.exploration_floor;
    controller_config.realloc_interval = config_.portfolio.realloc_interval;
    controller_config.seed = config_.seed;
    controller_config.telemetry = config_.telemetry;
    controller_ =
        std::make_unique<portfolio::AdaptiveController>(controller_config);
  }

  devices_.resize(config_.num_devices);
  for (std::uint32_t d = 0; d < config_.num_devices; ++d) {
    DeviceSlot& slot = devices_[d];
    slot.config = config_.device;
    slot.config.device_id = d;
    slot.config.seed = mix64(config_.seed ^ (d + 1));
    slot.config.telemetry = config_.telemetry;
    if (!slot.config.threads_per_device.has_value()) {
      // Auto: split the host's cores across the simulated devices.
      slot.config.threads_per_device = std::max(
          1u, std::thread::hardware_concurrency() / config_.num_devices);
    }
    if (diverse_) {
      // Stripe the arms across blocks so block b of device d starts on arm
      // (d + b) % num_arms — exactly the assignment register_block records.
      const std::uint32_t num_arms = controller_->num_arms();
      slot.config.algorithm_schedule.resize(num_arms);
      for (std::uint32_t j = 0; j < num_arms; ++j) {
        slot.config.algorithm_schedule[j] =
            controller_->arm((d + j) % num_arms).algorithm;
      }
      slot.config.algorithm_options = config_.portfolio.options;
    }
    slot.device = make_device(d, /*incarnation=*/0);
    if (diverse_) {
      for (std::uint32_t b = 0; b < slot.device->block_count(); ++b) {
        (void)controller_->register_block(d, b);
      }
    }
  }

  for (const auto& kv : config_.telemetry.labels.pairs()) {
    if (kv.first == "job") {
      // Best effort: a non-numeric job label leaves log lines unstamped.
      try {
        log_job_ = std::stoll(kv.second);
      } catch (const std::exception&) {
      }
    }
  }

  if (obs::MetricsRegistry* registry = config_.telemetry.metrics;
      registry != nullptr) {
    const obs::Labels& base = config_.telemetry.labels;
    m_reports_received_ =
        &registry->counter("absq_reports_received_total", base);
    m_reports_inserted_ =
        &registry->counter("absq_reports_inserted_total", base);
    m_duplicates_ =
        &registry->counter("absq_pool_duplicates_rejected_total", base);
    m_evictions_ = &registry->counter("absq_pool_evictions_total", base);
    m_targets_generated_ =
        &registry->counter("absq_targets_generated_total", base);
    m_improvements_ =
        &registry->counter("absq_incumbent_improvements_total", base);
    m_pool_best_energy_ = &registry->gauge("absq_pool_best_energy", base);
    m_pool_evaluated_ = &registry->gauge("absq_pool_evaluated", base);
    m_device_failures_ =
        &registry->counter("absq_device_failures_total", base);
    m_device_restarts_ =
        &registry->counter("absq_device_restarts_total", base);
    m_checkpoints_ =
        &registry->counter("absq_checkpoints_written_total", base);
    m_targets_dropped_ = &registry->counter(
        "absq_mailbox_dropped_total",
        config_.telemetry.with({{"mailbox", "targets"}}));
    m_solutions_dropped_ = &registry->counter(
        "absq_mailbox_dropped_total",
        config_.telemetry.with({{"mailbox", "solutions"}}));
    m_device_health_.reserve(devices_.size());
    for (std::uint32_t d = 0; d < config_.num_devices; ++d) {
      m_device_health_.push_back(&registry->gauge(
          "absq_device_health",
          config_.telemetry.with({{"device", std::to_string(d)}})));
    }
  }
}

AbsSolver::~AbsSolver() {
  for (auto& slot : devices_) {
    if (slot.device != nullptr) slot.device->stop();
  }
}

std::unique_ptr<Device> AbsSolver::make_device(std::size_t slot_index,
                                               std::uint32_t incarnation) {
  DeviceConfig device_config = devices_[slot_index].config;
  if (incarnation > 0) {
    // A restarted device must not replay the crashed incarnation's stream.
    device_config.seed =
        mix64(device_config.seed ^ (0x9e3779b97f4a7c15ULL * incarnation));
  }
  return std::make_unique<Device>(*w_, device_config);
}

void AbsSolver::retire_device_counters(DeviceSlot& slot) {
  slot.retired_flips += slot.device->total_flips();
  slot.retired_iterations += slot.device->total_iterations();
  slot.retired_reports += slot.device->solutions().counter();
  slot.retired_target_misses += slot.device->target_misses();
  slot.retired_targets_dropped += slot.device->targets().dropped();
  slot.retired_solutions_dropped += slot.device->solutions().dropped();
  slot.retired_algorithm_switches += slot.device->total_algorithm_switches();
}

Energy AbsSolver::current_best_energy() const {
  return diverse_ ? islands_->best_energy() : pool_.best_energy();
}

std::size_t AbsSolver::current_evaluated() const {
  return diverse_ ? islands_->evaluated_count() : pool_.evaluated_count();
}

const SolutionPool::Entry& AbsSolver::current_best() const {
  return diverse_ ? islands_->best() : pool_.best();
}

bool AbsSolver::insert_report(std::uint32_t device, std::uint32_t block,
                              const BitVector& bits, Energy energy) {
  if (!diverse_) return pool_.insert(bits, energy);
  const std::uint32_t arm = controller_->arm_of(device, block);
  const bool inserted =
      islands_->insert(controller_->arm(arm).island, bits, energy);
  if (inserted) controller_->credit_insert(arm);
  return inserted;
}

const BitVector& AbsSolver::stock_target(std::uint32_t device,
                                         std::uint32_t block) {
  if (!diverse_) {
    // With a warm start its entries (sorted best-first) go out first.
    const std::size_t index =
        config_.warm_start != nullptr && block < pool_.size()
            ? block
            : rng_.below(pool_.size());
    return pool_.entry(index).bits;
  }
  const std::uint32_t arm = controller_->arm_of(device, block);
  return islands_->random_member(controller_->arm(arm).island);
}

SolutionPool AbsSolver::merged_pool() const {
  // Best-first across all islands; duplicates collapse on insert, so the
  // checkpoint (and the final result pool view) is a classic single pool.
  SolutionPool merged(config_.pool_capacity);
  for (std::uint32_t i = 0; i < islands_->count(); ++i) {
    const SolutionPool& pool = islands_->pool(i);
    for (std::size_t rank = 0; rank < pool.size(); ++rank) {
      const SolutionPool::Entry& entry = pool.entry(rank);
      if (entry.energy == kUnevaluated) break;  // sorted: rest unevaluated
      (void)merged.insert(entry.bits, entry.energy);
    }
  }
  return merged;
}

void AbsSolver::reapply_algorithms(std::size_t slot_index) {
  // A rebuilt device incarnation starts on the *initial* striping baked
  // into its config; replay the controller's current assignments on top.
  if (!diverse_) return;
  DeviceSlot& slot = devices_[slot_index];
  for (std::uint32_t b = 0; b < slot.device->block_count(); ++b) {
    const std::uint32_t arm =
        controller_->arm_of(static_cast<std::uint32_t>(slot_index), b);
    slot.device->request_block_algorithm(b,
                                         controller_->arm(arm).algorithm);
  }
}

std::uint64_t AbsSolver::flips_across_devices() const {
  std::uint64_t total = 0;
  for (const auto& slot : devices_) {
    total += slot.retired_flips + slot.device->total_flips();
  }
  return total;
}

void AbsSolver::sync_pool_metrics() {
  if (m_reports_inserted_ == nullptr) return;
  std::uint64_t insertions = pool_.insertions();
  std::uint64_t duplicates = pool_.duplicates_rejected();
  std::uint64_t evictions = pool_.evictions();
  if (diverse_) {
    insertions = duplicates = evictions = 0;
    for (std::uint32_t i = 0; i < islands_->count(); ++i) {
      const SolutionPool& pool = islands_->pool(i);
      insertions += pool.insertions();
      duplicates += pool.duplicates_rejected();
      evictions += pool.evictions();
    }
    islands_->sync_metrics();
  }
  m_reports_inserted_->add(insertions - synced_inserted_);
  m_duplicates_->add(duplicates - synced_duplicates_);
  m_evictions_->add(evictions - synced_evictions_);
  synced_inserted_ = insertions;
  synced_duplicates_ = duplicates;
  synced_evictions_ = evictions;
  // Mailbox overflow totals, delta-synced the same way (the mailboxes'
  // dropped() counters are relaxed atomics, safe to read from the host).
  std::uint64_t targets_dropped = 0;
  std::uint64_t solutions_dropped = 0;
  for (const auto& slot : devices_) {
    targets_dropped +=
        slot.retired_targets_dropped + slot.device->targets().dropped();
    solutions_dropped +=
        slot.retired_solutions_dropped + slot.device->solutions().dropped();
  }
  m_targets_dropped_->add(targets_dropped - synced_targets_dropped_);
  m_solutions_dropped_->add(solutions_dropped - synced_solutions_dropped_);
  synced_targets_dropped_ = targets_dropped;
  synced_solutions_dropped_ = solutions_dropped;
  const Energy best = current_best_energy();
  if (best != kUnevaluated) {
    m_pool_best_energy_->set(static_cast<double>(best));
  }
  m_pool_evaluated_->set(static_cast<double>(current_evaluated()));
}

void AbsSolver::salvage_drain(DeviceSlot& slot, AbsResult& result,
                              double now) {
  // Reports already in the mailbox survive their device's death; no
  // replacement targets are bred — the device is out of the rotation.
  for (auto& report : slot.device->solutions().drain()) {
    ++result.reports_received;
    obs::add(m_reports_received_);
    const Energy energy = report.energy;
    if (insert_report(slot.config.device_id, report.block_id, report.bits,
                      energy)) {
      ++result.reports_inserted;
      if (result.best_trace.empty() ||
          energy < result.best_trace.back().second) {
        result.best_trace.emplace_back(now, energy);
        obs::add(m_improvements_);
      }
    }
  }
  slot.seen_counter = slot.device->solutions().counter();
}

void AbsSolver::quarantine(std::size_t slot_index, DeviceHealth health,
                           std::string diagnosis, AbsResult& result,
                           double now) {
  DeviceSlot& slot = devices_[slot_index];
  slot.health = health;
  slot.failure = std::move(diagnosis);
  slot.quarantined_at = now;
  // Stop without joining: the host must stay responsive even if the
  // device's threads are hung. The join happens at run end (Device::stop),
  // by which time injected stalls are cancelled.
  slot.device->request_stop();
  salvage_drain(slot, result, now);
  obs::add(m_device_failures_);
  if (!m_device_health_.empty()) {
    m_device_health_[slot_index]->set(static_cast<double>(health));
  }
  obs::log_warn("solver", "device quarantined",
                {{"device", static_cast<std::int64_t>(slot_index)},
                 {"health", to_string(health)},
                 {"diagnosis", slot.failure}},
                log_job_);
  if (obs::EventTracer* tracer = config_.telemetry.tracer;
      tracer != nullptr) {
    tracer->instant("device_failed", "host", config_.telemetry.pid_base,
                    /*tid=*/static_cast<std::uint32_t>(slot_index), "health",
                    static_cast<std::int64_t>(health));
  }
}

void AbsSolver::poll_device_health(AbsResult& result, double now) {
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    DeviceSlot& slot = devices_[d];
    if (slot.health == DeviceHealth::kHealthy) {
      // A captured exception is unambiguous: quarantine immediately.
      if (std::exception_ptr failure = slot.device->failure();
          failure != nullptr) {
        quarantine(d, DeviceHealth::kFailed,
                   "device worker threw: " + describe(failure), result, now);
        continue;
      }
      // Stall detection (opt-in): the iteration counter is the heartbeat.
      if (config_.watchdog.stall_grace_seconds > 0.0) {
        const std::uint64_t iterations = slot.device->total_iterations();
        if (iterations != slot.last_iterations) {
          slot.last_iterations = iterations;
          slot.last_progress_time = now;
        } else if (now - slot.last_progress_time >
                   config_.watchdog.stall_grace_seconds) {
          std::string diagnosis = "device stalled: no iteration for ";
          diagnosis += std::to_string(now - slot.last_progress_time);
          diagnosis += " s (grace ";
          diagnosis +=
              std::to_string(config_.watchdog.stall_grace_seconds);
          diagnosis += " s)";
          quarantine(d, DeviceHealth::kStalled, std::move(diagnosis), result,
                     now);
        }
      }
      continue;
    }

    // Bounded restart policy: failed devices only. A stalled device's
    // threads may be hung, and re-creating the slot requires joining the
    // old incarnation — so stalls stay quarantined.
    if (slot.health == DeviceHealth::kFailed &&
        slot.restarts < config_.watchdog.max_restarts &&
        now - slot.quarantined_at >=
            config_.watchdog.restart_backoff_seconds) {
      slot.device->stop();  // workers are idle after the failure; joins fast
      salvage_drain(slot, result, now);
      retire_device_counters(slot);

      ++slot.restarts;
      slot.device = make_device(d, ++slot.incarnations);
      slot.health = DeviceHealth::kHealthy;
      slot.failure.clear();
      slot.seen_counter = 0;
      slot.last_iterations = 0;
      slot.last_progress_time = now;
      reapply_algorithms(d);
      slot.device->start();
      for (std::uint32_t b = 0; b < slot.device->block_count(); ++b) {
        slot.device->targets().push(
            diverse_ ? stock_target(static_cast<std::uint32_t>(d), b)
                     : pool_.entry(rng_.below(pool_.size())).bits);
        ++result.targets_generated;
      }
      obs::add(m_targets_generated_, slot.device->block_count());
      obs::add(m_device_restarts_);
      if (!m_device_health_.empty()) {
        m_device_health_[d]->set(
            static_cast<double>(DeviceHealth::kHealthy));
      }
      obs::log_info("solver", "device restarted",
                    {{"device", static_cast<std::int64_t>(d)},
                     {"restart", static_cast<std::int64_t>(slot.restarts)},
                     {"incarnation",
                      static_cast<std::int64_t>(slot.incarnations)}},
                    log_job_);
      if (obs::EventTracer* tracer = config_.telemetry.tracer;
          tracer != nullptr) {
        tracer->instant("device_restarted", "host",
                        config_.telemetry.pid_base,
                        /*tid=*/static_cast<std::uint32_t>(d), "restart",
                        slot.restarts);
      }
    }
  }
}

void AbsSolver::write_run_checkpoint(AbsResult& result, double now) {
  RunCheckpoint checkpoint;
  checkpoint.seed = config_.seed;
  checkpoint.elapsed_seconds = config_.elapsed_offset_seconds + now;
  checkpoint.device_flips.reserve(devices_.size());
  for (const auto& slot : devices_) {
    checkpoint.device_flips.push_back(slot.retired_flips +
                                      slot.device->total_flips());
  }
  // Diverse runs checkpoint the merged best-first view of all islands, so
  // a resume (or a downgraded config) can warm-start a classic pool.
  checkpoint.pool = diverse_
                        ? std::make_shared<const SolutionPool>(merged_pool())
                        : std::make_shared<const SolutionPool>(pool_);
  try {
    write_checkpoint_file(config_.checkpoint_path, checkpoint);
    ++result.checkpoints_written;
    obs::add(m_checkpoints_);
    if (obs::EventTracer* tracer = config_.telemetry.tracer;
        tracer != nullptr) {
      tracer->instant("checkpoint", "host", config_.telemetry.pid_base,
                      /*tid=*/0, "written",
                      static_cast<std::int64_t>(result.checkpoints_written));
    }
    if (config_.on_checkpoint) {
      config_.on_checkpoint(result.checkpoints_written);
    }
  } catch (const std::exception& error) {
    // Durability degrades; the search must not. The previous snapshot is
    // still intact (atomic rename), so keep running and count the miss.
    ++result.checkpoints_failed;
    obs::log_warn("solver", "checkpoint write failed",
                  {{"path", config_.checkpoint_path},
                   {"error", error.what()}},
                  log_job_);
  }
}

AbsResult AbsSolver::run(const StopCriteria& stop) {
  ABSQ_CHECK(stop.bounded(),
             "at least one stop criterion must be set or the run never ends");

  AbsResult result;
  const std::uint64_t flips_at_start = flips_across_devices();

  const std::uint64_t reassignments_at_start =
      diverse_ ? controller_->reassignments() : 0;

  // Revive slots left unhealthy by a previous run: the device object may
  // hold dead workers, so it is rebuilt from the weight matrix.
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    DeviceSlot& slot = devices_[d];
    slot.restarts = 0;
    if (slot.health != DeviceHealth::kHealthy) {
      slot.device->stop();
      retire_device_counters(slot);
      slot.device = make_device(d, ++slot.incarnations);
      reapply_algorithms(d);
      slot.health = DeviceHealth::kHealthy;
      slot.failure.clear();
      if (!m_device_health_.empty()) {
        m_device_health_[d]->set(
            static_cast<double>(DeviceHealth::kHealthy));
      }
    }
  }

  // Host Step 1: random pool(s), energies unknown; stock the target buffers
  // with the random population so every block starts on GA-chosen ground.
  if (diverse_) {
    islands_->initialize_random(w_->size());
  } else {
    pool_.initialize_random(w_->size(), rng_);
  }
  synced_inserted_ = 0;
  synced_duplicates_ = 0;
  synced_evictions_ = 0;
  obs::EventTracer* const tracer = config_.telemetry.tracer;
  if (config_.warm_start != nullptr) {
    for (std::size_t i = 0; i < config_.warm_start->size(); ++i) {
      const auto& entry = config_.warm_start->entry(i);
      ABSQ_CHECK(entry.bits.size() == w_->size(),
                 "warm-start pool is for a different instance size");
      if (diverse_) {
        // Round-robin so every island shares the resumed elite.
        (void)islands_->insert(static_cast<std::uint32_t>(
                                   i % islands_->count()),
                               entry.bits, entry.energy);
      } else {
        (void)pool_.insert(entry.bits, entry.energy);
      }
    }
  }
  for (auto& slot : devices_) {
    Device& device = *slot.device;
    // One target per resident block; blocks without a target continue from
    // their current solution, so underfill is benign. With a warm start,
    // its entries (sorted best-first in the pool) go out first.
    for (std::uint32_t b = 0; b < device.block_count(); ++b) {
      result.targets_generated += 1;
      device.targets().push(stock_target(slot.config.device_id, b));
    }
    obs::add(m_targets_generated_, device.block_count());
  }

  Stopwatch watch;
  for (auto& slot : devices_) {
    slot.device->start();
    // Zero (not the current counter value): on a reused solver the first
    // poll then drains leftovers exactly as the pre-watchdog host did.
    slot.seen_counter = 0;
    slot.last_iterations = slot.device->total_iterations();
    slot.last_progress_time = 0.0;
  }

  const bool checkpointing = !config_.checkpoint_path.empty();
  double next_checkpoint = config_.checkpoint_interval_seconds;
  double next_snapshot = config_.snapshot_interval_seconds;
  double last_snapshot_time = 0.0;
  std::uint64_t last_snapshot_flips = 0;
  bool done = false;
  while (!done) {
    bool any_news = false;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      DeviceSlot& slot = devices_[d];
      if (slot.health != DeviceHealth::kHealthy) continue;  // quarantined
      // Host Step 2: poll the global counter; drain only when it moved.
      const std::uint64_t counter = slot.device->solutions().counter();
      if (counter == slot.seen_counter) continue;
      slot.seen_counter = counter;
      any_news = true;

      // One GA round for device d: drain, insert, breed replacements.
      obs::TraceSpan round_span(tracer, "ga_round", "host",
                                config_.telemetry.pid_base,
                                /*tid=*/static_cast<std::uint32_t>(d));

      // Host Step 3: insert arrivals into the pool.
      auto arrivals = slot.device->solutions().drain();
      round_span.set_arg("arrivals",
                         static_cast<std::int64_t>(arrivals.size()));
      obs::add(m_reports_received_, arrivals.size());
      for (auto& report : arrivals) {
        ++result.reports_received;
        const Energy energy = report.energy;
        if (insert_report(slot.config.device_id, report.block_id,
                          report.bits, energy)) {
          ++result.reports_inserted;
          if (result.best_trace.empty() ||
              energy < result.best_trace.back().second) {
            result.best_trace.emplace_back(watch.seconds(), energy);
            obs::add(m_improvements_);
            if (diverse_) {
              // The incumbent moved: weight this arm's credit heavily.
              controller_->credit_improvement(
                  controller_->arm_of(slot.config.device_id,
                                      report.block_id));
            }
            if (tracer != nullptr) {
              tracer->instant("incumbent", "host", config_.telemetry.pid_base,
                              /*tid=*/static_cast<std::uint32_t>(d), "energy",
                              energy);
            }
          }
        }
      }

      // Host Step 4: breed as many fresh targets as solutions arrived. In
      // diverse mode each replacement is bred from the island of the
      // arriving report's arm, with that island's own operators and stream.
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        if (diverse_) {
          const std::uint32_t arm = controller_->arm_of(
              slot.config.device_id, arrivals[i].block_id);
          slot.device->targets().push(
              islands_->breed(controller_->arm(arm).island));
        } else {
          slot.device->targets().push(
              generate_target(pool_, config_.ga, rng_));
        }
        ++result.targets_generated;
      }
      obs::add(m_targets_generated_, arrivals.size());
      if (tracer != nullptr && !arrivals.empty()) {
        tracer->instant("target_push", "host", config_.telemetry.pid_base,
                        /*tid=*/static_cast<std::uint32_t>(d), "targets",
                        static_cast<std::int64_t>(arrivals.size()));
      }
      sync_pool_metrics();

      // Diverse-ABS round clock: one drained device = one GA round. The
      // island ring migrates and the controller reallocates on their own
      // cadences over this clock.
      if (diverse_) {
        (void)islands_->note_round();
        (void)controller_->note_round(
            [this](std::uint32_t device, std::uint32_t block,
                   std::uint32_t arm) {
              DeviceSlot& target_slot = devices_[device];
              if (target_slot.health == DeviceHealth::kHealthy) {
                target_slot.device->request_block_algorithm(
                    block, controller_->arm(arm).algorithm);
              }
            });
      }
    }

    // Watchdog: failure capture, stall detection, bounded restarts.
    poll_device_health(result, watch.seconds());

    // Periodic observation.
    if (config_.snapshot_interval_seconds > 0.0) {
      const double now = watch.seconds();
      if (now >= next_snapshot) {
        const std::uint64_t flips = flips_across_devices() - flips_at_start;
        RunSnapshot snapshot;
        snapshot.seconds = now;
        snapshot.best_energy = current_best_energy();
        snapshot.pool_evaluated = current_evaluated();
        snapshot.total_flips = flips;
        // An empty observation window (first snapshot of a continuation,
        // or a poll racing the grid) yields NaN, not a nonsense rate.
        const double window = now - last_snapshot_time;
        snapshot.window_rate =
            window > 0.0 ? static_cast<double>(flips - last_snapshot_flips) *
                               w_->size() / window
                         : std::numeric_limits<double>::quiet_NaN();
        if (tracer != nullptr) {
          tracer->instant("snapshot", "host", config_.telemetry.pid_base,
                          /*tid=*/0, "flips",
                          static_cast<std::int64_t>(flips));
        }
        result.snapshots.push_back(snapshot);
        last_snapshot_time = now;
        last_snapshot_flips = flips;
        // Advance on the fixed grid so a late poll does not shift the
        // cadence permanently; skip intervals already missed rather than
        // emitting a burst of catch-up snapshots.
        while (next_snapshot <= now) {
          next_snapshot += config_.snapshot_interval_seconds;
        }
      }
    }

    // Periodic crash-safe checkpoint (same fixed-grid cadence).
    if (checkpointing && config_.checkpoint_interval_seconds > 0.0) {
      const double now = watch.seconds();
      if (now >= next_checkpoint) {
        write_run_checkpoint(result, now);
        while (next_checkpoint <= now) {
          next_checkpoint += config_.checkpoint_interval_seconds;
        }
      }
    }

    // Stop checks.
    if (stop_requested_.exchange(false)) {
      result.cancelled = true;
      done = true;
    }
    if (stop.target_energy.has_value() &&
        current_best_energy() <= *stop.target_energy) {
      result.reached_target = true;
      done = true;
    }
    if (stop.time_limit_seconds > 0.0 &&
        watch.seconds() >= stop.time_limit_seconds) {
      done = true;
    }
    if (stop.max_flips > 0 &&
        flips_across_devices() - flips_at_start >= stop.max_flips) {
      done = true;
    }

    // Degraded-mode floor: when every device is quarantined and none can
    // be restarted, waiting out the clock is pointless.
    if (!done) {
      const bool any_alive_or_restartable = std::any_of(
          devices_.begin(), devices_.end(), [this](const DeviceSlot& slot) {
            return slot.health == DeviceHealth::kHealthy ||
                   (slot.health == DeviceHealth::kFailed &&
                    slot.restarts < config_.watchdog.max_restarts);
          });
      if (!any_alive_or_restartable) done = true;
    }

    if (!done && !any_news) {
      // Nothing arrived: yield briefly instead of spinning on the counters
      // (the cudaMemcpyAsync cadence of the paper's host).
      std::this_thread::yield();
    }
  }

  for (auto& slot : devices_) slot.device->stop();
  result.seconds = watch.seconds();

  // Final drain so reports in flight at stop time are not lost.
  for (auto& slot : devices_) {
    for (auto& report : slot.device->solutions().drain()) {
      ++result.reports_received;
      obs::add(m_reports_received_);
      if (insert_report(slot.config.device_id, report.block_id, report.bits,
                        report.energy)) {
        ++result.reports_inserted;
      }
    }
    result.solutions_dropped += slot.retired_solutions_dropped +
                                slot.device->solutions().dropped();
    result.targets_dropped +=
        slot.retired_targets_dropped + slot.device->targets().dropped();
  }
  sync_pool_metrics();
  if (diverse_) {
    for (std::uint32_t i = 0; i < islands_->count(); ++i) {
      result.duplicates_rejected += islands_->pool(i).duplicates_rejected();
      result.pool_evictions += islands_->pool(i).evictions();
    }
  } else {
    result.duplicates_rejected = pool_.duplicates_rejected();
    result.pool_evictions = pool_.evictions();
  }
  if (stop.target_energy.has_value() &&
      current_best_energy() <= *stop.target_energy) {
    result.reached_target = true;
  }

  if (current_evaluated() == 0) {
    // Nothing was ever reported. If that is because every device died,
    // surface the original fault rather than a misleading configuration
    // hint.
    for (const auto& slot : devices_) {
      if (slot.health == DeviceHealth::kFailed) {
        if (std::exception_ptr failure = slot.device->failure();
            failure != nullptr) {
          std::rethrow_exception(failure);
        }
        ABSQ_CHECK(false, "all devices failed before any report: "
                              << slot.failure);
      }
    }
  }
  ABSQ_CHECK(current_evaluated() > 0,
             "run ended before any device reported — raise the time limit");
  for (auto& slot : devices_) {
    Device& device = *slot.device;
    DeviceSummary summary;
    summary.device_id = slot.config.device_id;
    summary.workers = device.worker_count();
    summary.flips = slot.retired_flips + device.total_flips();
    summary.iterations = slot.retired_iterations + device.total_iterations();
    summary.reports = slot.retired_reports + device.solutions().counter();
    summary.target_misses =
        slot.retired_target_misses + device.target_misses();
    summary.targets_dropped =
        slot.retired_targets_dropped + device.targets().dropped();
    summary.solutions_dropped =
        slot.retired_solutions_dropped + device.solutions().dropped();
    summary.algorithm_switches =
        slot.retired_algorithm_switches + device.total_algorithm_switches();
    summary.health = slot.health;
    summary.restarts = slot.restarts;
    summary.failure = slot.failure;
    if (slot.health != DeviceHealth::kHealthy) {
      result.failed_devices.push_back(slot.config.device_id);
    }
    result.devices.push_back(summary);
  }
  if (diverse_) {
    result.migrations = islands_->migrations();
    result.migration_events = islands_->migration_events();
    result.controller_reassignments =
        controller_->reassignments() - reassignments_at_start;
    result.islands.reserve(islands_->count());
    for (std::uint32_t i = 0; i < islands_->count(); ++i) {
      IslandSummary summary;
      summary.island_id = i;
      summary.best_energy = islands_->pool(i).best_energy();
      summary.pool_evaluated = islands_->pool(i).evaluated_count();
      summary.inserts = islands_->inserts(i);
      for (const auto& event : islands_->migration_log()) {
        if (event.to == i) ++summary.migrations_in;
      }
      summary.blocks = controller_->blocks_on_island(i);
      result.islands.push_back(summary);
    }
  }
  result.best = current_best().bits;
  result.best_energy = current_best().energy;
  result.total_flips = flips_across_devices() - flips_at_start;
  result.evaluated_solutions = result.total_flips * w_->size();
  result.search_rate = result.seconds > 0.0
                           ? static_cast<double>(result.evaluated_solutions) /
                                 result.seconds
                           : 0.0;

  // Graceful-shutdown checkpoint: a cancelled (SIGINT) or completed run
  // leaves a resumable snapshot behind.
  if (checkpointing) write_run_checkpoint(result, result.seconds);
  return result;
}

}  // namespace absq
