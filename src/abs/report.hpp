// Run-report sink — machine-readable export of a whole solver run.
//
// One run = one JSONL stream: a `meta` line (tool, instance, seed,
// free-form key/values), a `result` line (the AbsResult scalars including
// pool churn), one `device` line per DeviceSummary, one `improvement`
// line per best-trace point, one `snapshot` line per RunSnapshot, and —
// when a MetricsRegistry is attached — one `metric` line per series.
// Every line is a self-contained JSON object with a `type` field, so
// downstream tooling (EXPERIMENTS.md tables, regression gates, plots)
// can stream-filter without a schema. Non-finite doubles serialize as
// null (JSON has no NaN).
//
// The same sink serves absq_solve's --report flag and the bench
// harnesses (bench_util.hpp), so all BENCH/run trajectories share one
// format.
//
// Lives in abs/ (not obs/): the report serializes AbsResult, so the sink
// belongs to the layer that owns that type — obs/ must stay below abs/ in
// the module DAG (lint_layers.toml). The JSON text primitives it uses are
// in obs/json_text.hpp.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "abs/solver.hpp"
#include "obs/metrics.hpp"

namespace absq {

struct RunReportMeta {
  std::string tool;      ///< producing binary, e.g. "absq_solve"
  std::string instance;  ///< input path or generator description
  std::uint64_t seed = 0;
  /// Free-form key/value pairs (config knobs, bench row identity, ...).
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Streams the full JSONL report. `metrics` may be null (no metric
/// lines); scrape happens at call time.
void write_run_report(std::ostream& out, const RunReportMeta& meta,
                      const AbsResult& result,
                      const obs::MetricsRegistry* metrics = nullptr);

/// Convenience: opens `path` (truncating) and writes the report.
void write_run_report_file(const std::string& path, const RunReportMeta& meta,
                           const AbsResult& result,
                           const obs::MetricsRegistry* metrics = nullptr);

}  // namespace absq
