// AbsSolver — the full Adaptive Bulk Search framework (Fig. 5).
//
// Host loop (Section 3.1):
//   Step 1: initialize the solution pool with random bit vectors (energies
//           unknown — the host never evaluates E) and stock every device's
//           target buffer.
//   Step 2: poll the devices' solution counters.
//   Step 3: insert newly reported solutions into the sorted, duplicate-free
//           pool.
//   Step 4: breed and store as many new targets as solutions arrived, and
//           go back to Step 2.
//
// Devices run concurrently and asynchronously (see Device); the only shared
// state is the mailboxes. The solver stops on any of the configured
// criteria and reports throughput in the paper's metric — evaluated
// solutions per second, where every committed flip evaluates n neighbours.
//
// Fault tolerance (docs/robustness.md): the host loop doubles as a device
// watchdog. A device whose worker threw is quarantined (stopped without
// joining, salvage-drained, excluded from target stocking) and the run
// continues on the survivors; an optional bounded restart policy re-creates
// failed devices from the weight matrix. Because the protocol is built on
// monotonic counters, a *stalled* device is detected the same way the
// paper's host would have to — its iteration counter stops advancing for
// longer than a grace window. Periodic crash-safe checkpoints (atomic
// temp+rename snapshots of the pool plus run context) make a SIGKILL'd run
// resumable through AbsConfig::warm_start.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "abs/device.hpp"
#include "ga/operators.hpp"
#include "ga/solution_pool.hpp"
#include "obs/telemetry.hpp"
#include "portfolio/controller.hpp"
#include "portfolio/island.hpp"
#include "portfolio/portfolio.hpp"
#include "qubo/bit_vector.hpp"
#include "qubo/weight_matrix.hpp"

namespace absq {

/// When to stop a run. Criteria compose with OR; at least one of
/// target_energy / time_limit_seconds / max_flips must be set.
struct StopCriteria {
  /// Stop once the pool's best energy is ≤ this (time-to-solution runs).
  std::optional<Energy> target_energy;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_limit_seconds = 0.0;
  /// Total committed flips across all devices (0 = unlimited).
  std::uint64_t max_flips = 0;

  [[nodiscard]] bool bounded() const {
    return target_energy.has_value() || time_limit_seconds > 0.0 ||
           max_flips > 0;
  }
};

/// Device-health policy of AbsSolver's host loop. The defaults detect
/// thrown device failures (always on — a captured exception is
/// unambiguous) but leave stall detection and restarts opt-in, because
/// both trade determinism-of-behaviour for availability.
struct WatchdogConfig {
  /// > 0 enables stall detection: a running device whose iteration
  /// counter has not advanced for this many seconds is quarantined.
  /// Tune well above the longest legitimate block iteration (see
  /// docs/robustness.md); 0 disables.
  double stall_grace_seconds = 0.0;
  /// Restart budget per device slot. Only devices that *failed* (threw)
  /// are restarted — a stalled device cannot be safely joined, so it
  /// stays quarantined until the run ends.
  std::uint32_t max_restarts = 0;
  /// Minimum delay between a failure and its restart attempt.
  double restart_backoff_seconds = 0.0;
};

struct AbsConfig {
  std::uint32_t num_devices = 1;
  /// Per-device template; device_id is assigned by the solver.
  DeviceConfig device;
  /// m, the solution-pool capacity.
  std::size_t pool_capacity = 128;
  GaConfig ga;
  std::uint64_t seed = 42;
  /// Device failure / stall handling (see WatchdogConfig).
  WatchdogConfig watchdog;
  /// Non-empty enables crash-safe run checkpointing to this path: an
  /// atomic snapshot (pool + seed + elapsed + per-device flips) is
  /// written every checkpoint_interval_seconds and once more on any
  /// graceful end of run() — including cancellation via request_stop().
  std::string checkpoint_path;
  double checkpoint_interval_seconds = 0.0;
  /// Wall-clock seconds already spent by previous incarnations of this
  /// run (from a resumed checkpoint); added to the `elapsed` field of
  /// every checkpoint written.
  double elapsed_offset_seconds = 0.0;
  /// Optional warm start (checkpoint resume): these entries are inserted
  /// into the fresh pool at host Step 1 and preferred as initial targets.
  /// Shared ownership keeps the config copyable across devices/runs.
  std::shared_ptr<const SolutionPool> warm_start;
  /// Called (from the host loop thread) after each *successful* crash-safe
  /// checkpoint write, with the lifetime count of checkpoints this run has
  /// written. The serve layer journals per-job `checkpointed` records
  /// through this; null = no notification. Must not throw.
  std::function<void(std::uint64_t)> on_checkpoint;
  /// > 0 enables periodic RunSnapshot collection at roughly this cadence.
  double snapshot_interval_seconds = 0.0;
  /// Diverse ABS (docs/algorithms.md): island pools, the per-block search
  /// portfolio, and the adaptive (pool, algorithm) controller. The default
  /// (1 island, min-Δ only, controller off) leaves the solver bit-identical
  /// to the single-pool protocol above — the lockstep test pins this.
  portfolio::PortfolioConfig portfolio;
  /// Observability sinks, propagated to every device (non-owning; default
  /// = disabled). The solver adds host-side series (pool churn, GA
  /// breeding, incumbent gauges) and trace spans for host rounds. The
  /// registry/tracer must outlive the solver.
  obs::Telemetry telemetry;
};

/// Device health as judged by the solver watchdog.
enum class DeviceHealth : std::uint8_t {
  kHealthy = 0,  ///< running (or ran to completion) normally
  kStalled = 1,  ///< quarantined: iteration counter stopped advancing
  kFailed = 2,   ///< quarantined: a worker threw (restart budget exhausted)
};

[[nodiscard]] const char* to_string(DeviceHealth health);

/// Per-device accounting attached to every result. Counters are lifetime
/// totals across every incarnation of the device slot (restarts included).
struct DeviceSummary {
  std::uint32_t device_id = 0;
  std::uint32_t workers = 0;  ///< worker threads (0 = legacy single-thread)
  std::uint64_t flips = 0;
  std::uint64_t iterations = 0;
  std::uint64_t reports = 0;  ///< solutions pushed (mailbox counter)
  /// Block iterations that found no fresh target (host fell behind).
  std::uint64_t target_misses = 0;
  std::uint64_t targets_dropped = 0;    ///< target-mailbox overwrites
  std::uint64_t solutions_dropped = 0;  ///< solution-mailbox overwrites
  DeviceHealth health = DeviceHealth::kHealthy;  ///< state at run end
  std::uint32_t restarts = 0;  ///< successful watchdog restarts this run
  /// Times any of the device's blocks changed its portfolio member on a
  /// controller request (0 outside diverse mode).
  std::uint64_t algorithm_switches = 0;
  /// what() of the captured exception (or the stall diagnosis) for an
  /// unhealthy device; empty while healthy.
  std::string failure;
};

/// Per-island accounting attached to diverse-mode results (empty vector on
/// classic single-pool runs).
struct IslandSummary {
  std::uint32_t island_id = 0;
  Energy best_energy = 0;  ///< kUnevaluated when nothing reported
  std::size_t pool_evaluated = 0;
  std::uint64_t inserts = 0;        ///< reports this island's pool accepted
  std::uint64_t migrations_in = 0;  ///< elites received over the ring
  std::uint32_t blocks = 0;         ///< blocks assigned at run end
};

/// One periodic observation of a running solve (see
/// AbsConfig::snapshot_interval_seconds).
struct RunSnapshot {
  double seconds = 0.0;
  Energy best_energy = 0;             ///< pool best (kUnevaluated if none)
  std::size_t pool_evaluated = 0;
  std::uint64_t total_flips = 0;
  /// Evaluated solutions per second since the previous snapshot. NaN when
  /// the observation window was empty (e.g. the first snapshot of a
  /// continuation fired immediately) — a near-zero-length window must not
  /// produce an absurd rate, and 0.0 would be indistinguishable from a
  /// genuinely stalled solver.
  double window_rate = 0.0;
};

struct AbsResult {
  BitVector best;
  Energy best_energy = 0;
  bool reached_target = false;
  /// True when the run ended because request_stop() was called.
  bool cancelled = false;

  double seconds = 0.0;
  std::uint64_t total_flips = 0;
  std::uint64_t evaluated_solutions = 0;
  /// Evaluated solutions per second — the paper's "search rate".
  double search_rate = 0.0;

  std::uint64_t reports_received = 0;
  std::uint64_t reports_inserted = 0;
  /// Pool churn: reports rejected as exact duplicates (the premature-
  /// convergence signal) and members evicted for better newcomers.
  std::uint64_t duplicates_rejected = 0;
  std::uint64_t pool_evictions = 0;
  std::uint64_t targets_generated = 0;
  std::uint64_t solutions_dropped = 0;
  std::uint64_t targets_dropped = 0;

  /// (wall-clock seconds, energy) at each improvement of the incumbent —
  /// the raw series behind time-to-solution plots.
  std::vector<std::pair<double, Energy>> best_trace;
  /// Per-device breakdown (the Fig. 8 fairness data).
  std::vector<DeviceSummary> devices;
  /// Diverse mode only: per-island breakdown, ring-migration totals, and
  /// controller activity. All empty/zero on classic runs.
  std::vector<IslandSummary> islands;
  std::uint64_t migrations = 0;        ///< elites copied over the ring
  std::uint64_t migration_events = 0;  ///< times the ring migration ran
  std::uint64_t controller_reassignments = 0;
  /// Periodic observations, when enabled.
  std::vector<RunSnapshot> snapshots;

  /// Device ids quarantined (stalled or failed) at run end. Empty for a
  /// fully healthy run; a device that failed but was restarted within
  /// budget is NOT listed (see DeviceSummary::restarts).
  std::vector<std::uint32_t> failed_devices;
  /// Run checkpoints successfully written / failed to write (a checkpoint
  /// write failure degrades the run's durability, never its progress).
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_failed = 0;
};

class AbsSolver {
 public:
  AbsSolver(const WeightMatrix& w, AbsConfig config);
  ~AbsSolver();

  AbsSolver(const AbsSolver&) = delete;
  AbsSolver& operator=(const AbsSolver&) = delete;

  /// Runs until a stop criterion fires. Reusable: each call restarts from a
  /// fresh pool but keeps the devices' accumulated search state (matching
  /// the paper's long-lived blocks).
  AbsResult run(const StopCriteria& stop);

  /// Thread-safe external cancellation: the current (or next) run() ends
  /// at its next host-loop poll with result.cancelled = true. The flag is
  /// consumed by that run.
  void request_stop() { stop_requested_.store(true); }

  [[nodiscard]] const SolutionPool& pool() const { return pool_; }
  /// Diverse mode only (null otherwise): the island pools / controller.
  /// Host-loop state — read between runs or from the host thread.
  [[nodiscard]] const portfolio::IslandSet* islands() const {
    return islands_.get();
  }
  [[nodiscard]] const portfolio::AdaptiveController* controller() const {
    return controller_.get();
  }
  [[nodiscard]] std::uint32_t num_devices() const {
    return static_cast<std::uint32_t>(devices_.size());
  }
  [[nodiscard]] const Device& device(std::size_t i) const {
    return *devices_[i].device;
  }
  /// Watchdog verdict for device slot `i` (kHealthy between runs).
  [[nodiscard]] DeviceHealth device_health(std::size_t i) const {
    return devices_[i].health;
  }

 private:
  /// One logical device position. The Device object is replaced on
  /// restart; the slot carries the identity, the health verdict, and the
  /// counters accumulated by retired incarnations.
  struct DeviceSlot {
    std::unique_ptr<Device> device;
    DeviceConfig config;  ///< resolved per-device config (restart template)
    DeviceHealth health = DeviceHealth::kHealthy;
    std::uint32_t restarts = 0;     ///< watchdog restarts this run
    std::uint32_t incarnations = 0; ///< devices built beyond the first (ever)
    std::string failure;        ///< diagnosis once unhealthy
    double quarantined_at = 0;  ///< run clock at quarantine (backoff base)
    std::uint64_t seen_counter = 0;  ///< host Step 2 high-water mark
    // Watchdog progress tracking.
    std::uint64_t last_iterations = 0;
    double last_progress_time = 0.0;
    // Lifetime counters of retired (crashed-and-replaced) incarnations.
    std::uint64_t retired_flips = 0;
    std::uint64_t retired_iterations = 0;
    std::uint64_t retired_reports = 0;
    std::uint64_t retired_target_misses = 0;
    std::uint64_t retired_targets_dropped = 0;
    std::uint64_t retired_solutions_dropped = 0;
    std::uint64_t retired_algorithm_switches = 0;
  };

  std::uint64_t flips_across_devices() const;
  /// Pushes the pool-churn counter deltas since the last sync into the
  /// metrics registry (no-op when metrics are disabled).
  void sync_pool_metrics();
  /// Builds a fresh Device for slot `slot_index`; `incarnation` > 0 remixes
  /// the seed so a restarted device explores a new stream.
  [[nodiscard]] std::unique_ptr<Device> make_device(std::size_t slot_index,
                                                    std::uint32_t incarnation);
  /// Folds a retiring Device's lifetime counters into the slot's retired_*
  /// accumulators so summaries stay lifetime totals across incarnations.
  static void retire_device_counters(DeviceSlot& slot);
  /// Drains a device's solution buffer into the pool without breeding
  /// replacement targets — the salvage path for quarantined devices.
  void salvage_drain(DeviceSlot& slot, AbsResult& result, double now);
  /// Marks a device unhealthy, stops it without joining, salvages its
  /// in-flight reports, and records telemetry.
  void quarantine(std::size_t slot_index, DeviceHealth health,
                  std::string diagnosis, AbsResult& result, double now);
  /// Failure/stall detection plus the bounded restart policy; called from
  /// the host loop.
  void poll_device_health(AbsResult& result, double now);
  /// Writes a run checkpoint (atomic); failures are counted, not fatal.
  void write_run_checkpoint(AbsResult& result, double now);
  /// Best evaluated energy of the run's pool(s) — islands in diverse mode.
  [[nodiscard]] Energy current_best_energy() const;
  /// Evaluated entries across the run's pool(s).
  [[nodiscard]] std::size_t current_evaluated() const;
  /// The globally best entry across the run's pool(s).
  [[nodiscard]] const SolutionPool::Entry& current_best() const;
  /// Inserts one report into the right pool (the island of the reporting
  /// block's arm in diverse mode), crediting the controller. Returns true
  /// when the pool accepted it.
  bool insert_report(std::uint32_t device, std::uint32_t block,
                     const BitVector& bits, Energy energy);
  /// A target-stocking bit vector for block `block` of device `device`
  /// (its arm's island pool in diverse mode).
  [[nodiscard]] const BitVector& stock_target(std::uint32_t device,
                                              std::uint32_t block);
  /// Diverse mode: the merged best-first view of all island pools (the
  /// checkpoint payload, capped at pool_capacity).
  [[nodiscard]] SolutionPool merged_pool() const;
  /// Re-applies the controller's current (possibly reallocated) member
  /// assignments to a freshly built device incarnation.
  void reapply_algorithms(std::size_t slot_index);

  const WeightMatrix* w_;
  AbsConfig config_;
  SolutionPool pool_;
  /// Diverse mode (portfolio.diverse()): the island pools and the
  /// (island, algorithm) controller; null on classic runs. The controller
  /// exists even with portfolio.controller == false — it carries the
  /// static block → arm striping the report router needs.
  std::unique_ptr<portfolio::IslandSet> islands_;
  std::unique_ptr<portfolio::AdaptiveController> controller_;
  bool diverse_ = false;
  std::vector<DeviceSlot> devices_;
  Rng rng_;
  std::atomic<bool> stop_requested_{false};

  // Host-side telemetry series, resolved at construction (null = off).
  obs::Counter* m_reports_received_ = nullptr;
  obs::Counter* m_reports_inserted_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_targets_generated_ = nullptr;
  obs::Counter* m_improvements_ = nullptr;
  obs::Gauge* m_pool_best_energy_ = nullptr;
  obs::Gauge* m_pool_evaluated_ = nullptr;
  obs::Counter* m_device_failures_ = nullptr;
  obs::Counter* m_device_restarts_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_targets_dropped_ = nullptr;    ///< mailbox="targets"
  obs::Counter* m_solutions_dropped_ = nullptr;  ///< mailbox="solutions"
  std::vector<obs::Gauge*> m_device_health_;  ///< per slot; DeviceHealth value
  std::uint64_t synced_inserted_ = 0;
  std::uint64_t synced_duplicates_ = 0;
  std::uint64_t synced_evictions_ = 0;
  std::uint64_t synced_targets_dropped_ = 0;
  std::uint64_t synced_solutions_dropped_ = 0;
  /// Job id parsed from the telemetry base labels ({job="<id>"}), stamped
  /// onto this solver's log lines; -1 = standalone run, no job field.
  std::int64_t log_job_ = -1;
};

}  // namespace absq
