// AbsSolver — the full Adaptive Bulk Search framework (Fig. 5).
//
// Host loop (Section 3.1):
//   Step 1: initialize the solution pool with random bit vectors (energies
//           unknown — the host never evaluates E) and stock every device's
//           target buffer.
//   Step 2: poll the devices' solution counters.
//   Step 3: insert newly reported solutions into the sorted, duplicate-free
//           pool.
//   Step 4: breed and store as many new targets as solutions arrived, and
//           go back to Step 2.
//
// Devices run concurrently and asynchronously (see Device); the only shared
// state is the mailboxes. The solver stops on any of the configured
// criteria and reports throughput in the paper's metric — evaluated
// solutions per second, where every committed flip evaluates n neighbours.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "abs/device.hpp"
#include "ga/operators.hpp"
#include "ga/solution_pool.hpp"
#include "obs/telemetry.hpp"
#include "qubo/bit_vector.hpp"
#include "qubo/weight_matrix.hpp"

namespace absq {

/// When to stop a run. Criteria compose with OR; at least one of
/// target_energy / time_limit_seconds / max_flips must be set.
struct StopCriteria {
  /// Stop once the pool's best energy is ≤ this (time-to-solution runs).
  std::optional<Energy> target_energy;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_limit_seconds = 0.0;
  /// Total committed flips across all devices (0 = unlimited).
  std::uint64_t max_flips = 0;

  [[nodiscard]] bool bounded() const {
    return target_energy.has_value() || time_limit_seconds > 0.0 ||
           max_flips > 0;
  }
};

struct AbsConfig {
  std::uint32_t num_devices = 1;
  /// Per-device template; device_id is assigned by the solver.
  DeviceConfig device;
  /// m, the solution-pool capacity.
  std::size_t pool_capacity = 128;
  GaConfig ga;
  std::uint64_t seed = 42;
  /// Optional warm start (checkpoint resume): these entries are inserted
  /// into the fresh pool at host Step 1 and preferred as initial targets.
  /// Shared ownership keeps the config copyable across devices/runs.
  std::shared_ptr<const SolutionPool> warm_start;
  /// > 0 enables periodic RunSnapshot collection at roughly this cadence.
  double snapshot_interval_seconds = 0.0;
  /// Observability sinks, propagated to every device (non-owning; default
  /// = disabled). The solver adds host-side series (pool churn, GA
  /// breeding, incumbent gauges) and trace spans for host rounds. The
  /// registry/tracer must outlive the solver.
  obs::Telemetry telemetry;
};

/// Per-device accounting attached to every result.
struct DeviceSummary {
  std::uint32_t device_id = 0;
  std::uint32_t workers = 0;  ///< worker threads (0 = legacy single-thread)
  std::uint64_t flips = 0;
  std::uint64_t iterations = 0;
  std::uint64_t reports = 0;  ///< solutions pushed (mailbox counter)
  /// Block iterations that found no fresh target (host fell behind).
  std::uint64_t target_misses = 0;
  std::uint64_t targets_dropped = 0;    ///< target-mailbox overwrites
  std::uint64_t solutions_dropped = 0;  ///< solution-mailbox overwrites
};

/// One periodic observation of a running solve (see
/// AbsConfig::snapshot_interval_seconds).
struct RunSnapshot {
  double seconds = 0.0;
  Energy best_energy = 0;             ///< pool best (kUnevaluated if none)
  std::size_t pool_evaluated = 0;
  std::uint64_t total_flips = 0;
  /// Evaluated solutions per second since the previous snapshot. NaN when
  /// the observation window was empty (e.g. the first snapshot of a
  /// continuation fired immediately) — a near-zero-length window must not
  /// produce an absurd rate, and 0.0 would be indistinguishable from a
  /// genuinely stalled solver.
  double window_rate = 0.0;
};

struct AbsResult {
  BitVector best;
  Energy best_energy = 0;
  bool reached_target = false;
  /// True when the run ended because request_stop() was called.
  bool cancelled = false;

  double seconds = 0.0;
  std::uint64_t total_flips = 0;
  std::uint64_t evaluated_solutions = 0;
  /// Evaluated solutions per second — the paper's "search rate".
  double search_rate = 0.0;

  std::uint64_t reports_received = 0;
  std::uint64_t reports_inserted = 0;
  /// Pool churn: reports rejected as exact duplicates (the premature-
  /// convergence signal) and members evicted for better newcomers.
  std::uint64_t duplicates_rejected = 0;
  std::uint64_t pool_evictions = 0;
  std::uint64_t targets_generated = 0;
  std::uint64_t solutions_dropped = 0;
  std::uint64_t targets_dropped = 0;

  /// (wall-clock seconds, energy) at each improvement of the incumbent —
  /// the raw series behind time-to-solution plots.
  std::vector<std::pair<double, Energy>> best_trace;
  /// Per-device breakdown (the Fig. 8 fairness data).
  std::vector<DeviceSummary> devices;
  /// Periodic observations, when enabled.
  std::vector<RunSnapshot> snapshots;
};

class AbsSolver {
 public:
  AbsSolver(const WeightMatrix& w, AbsConfig config);
  ~AbsSolver();

  AbsSolver(const AbsSolver&) = delete;
  AbsSolver& operator=(const AbsSolver&) = delete;

  /// Runs until a stop criterion fires. Reusable: each call restarts from a
  /// fresh pool but keeps the devices' accumulated search state (matching
  /// the paper's long-lived blocks).
  AbsResult run(const StopCriteria& stop);

  /// Thread-safe external cancellation: the current (or next) run() ends
  /// at its next host-loop poll with result.cancelled = true. The flag is
  /// consumed by that run.
  void request_stop() { stop_requested_.store(true); }

  [[nodiscard]] const SolutionPool& pool() const { return pool_; }
  [[nodiscard]] std::uint32_t num_devices() const {
    return static_cast<std::uint32_t>(devices_.size());
  }
  [[nodiscard]] const Device& device(std::size_t i) const {
    return *devices_[i];
  }

 private:
  std::uint64_t flips_across_devices() const;
  /// Pushes the pool-churn counter deltas since the last sync into the
  /// metrics registry (no-op when metrics are disabled).
  void sync_pool_metrics();

  const WeightMatrix* w_;
  AbsConfig config_;
  SolutionPool pool_;
  std::vector<std::unique_ptr<Device>> devices_;
  Rng rng_;
  std::atomic<bool> stop_requested_{false};

  // Host-side telemetry series, resolved at construction (null = off).
  obs::Counter* m_reports_received_ = nullptr;
  obs::Counter* m_reports_inserted_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_targets_generated_ = nullptr;
  obs::Counter* m_improvements_ = nullptr;
  obs::Gauge* m_pool_best_energy_ = nullptr;
  obs::Gauge* m_pool_evaluated_ = nullptr;
  std::uint64_t synced_inserted_ = 0;
  std::uint64_t synced_duplicates_ = 0;
  std::uint64_t synced_evictions_ = 0;
};

}  // namespace absq
