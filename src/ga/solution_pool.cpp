#include "ga/solution_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace absq {

SolutionPool::SolutionPool(std::size_t capacity) : capacity_(capacity) {
  ABSQ_CHECK(capacity >= 1, "pool capacity must be at least 1");
  entries_.reserve(capacity);
}

void SolutionPool::initialize_random(BitIndex n, Rng& rng) {
  entries_.clear();
  present_.clear();
  insertions_ = 0;
  duplicates_rejected_ = 0;
  full_rejections_ = 0;
  evictions_ = 0;
  while (entries_.size() < capacity_) {
    BitVector bits = BitVector::random(n, rng);
    if (!present_.insert(bits).second) continue;  // keep distinct
    entries_.push_back(Entry{std::move(bits), kUnevaluated});
  }
  std::sort(entries_.begin(), entries_.end());
}

bool SolutionPool::insert(const BitVector& bits, Energy energy) {
  if (present_.contains(bits)) {
    ++duplicates_rejected_;
    return false;
  }
  const Entry candidate{bits, energy};
  if (entries_.size() >= capacity_) {
    // Full: the newcomer must strictly beat the worst member.
    if (!(candidate < entries_.back())) {
      ++full_rejections_;
      return false;
    }
    present_.erase(entries_.back().bits);
    entries_.pop_back();
    ++evictions_;
  }
  // O(log m) position search, as in the paper.
  const auto pos =
      std::lower_bound(entries_.begin(), entries_.end(), candidate);
  entries_.insert(pos, candidate);
  present_.insert(bits);
  ++insertions_;
  return true;
}

bool SolutionPool::contains(const BitVector& bits) const {
  return present_.contains(bits);
}

std::size_t SolutionPool::evaluated_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Entry& e) { return e.energy != kUnevaluated; }));
}

bool SolutionPool::check_invariants() const {
  if (entries_.size() > capacity_) return false;
  if (present_.size() != entries_.size()) return false;
  for (std::size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (!(entries_[i] < entries_[i + 1])) return false;  // strict order
  }
  for (const auto& entry : entries_) {
    if (!present_.contains(entry.bits)) return false;
  }
  return true;
}

}  // namespace absq
