#include "ga/operators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace absq {

BitVector mutate(const BitVector& parent, BitIndex flip_count, Rng& rng) {
  const BitIndex n = parent.size();
  ABSQ_CHECK(n >= 1, "cannot mutate an empty vector");
  flip_count = std::clamp<BitIndex>(flip_count, 1, n);
  BitVector child = parent;
  // Floyd's algorithm for a uniform sample of `flip_count` distinct bits —
  // O(flip_count) expected, no allocation beyond the small set.
  std::vector<BitIndex> chosen;
  chosen.reserve(flip_count);
  for (BitIndex j = n - flip_count; j < n; ++j) {
    auto candidate = static_cast<BitIndex>(rng.below(j + 1));
    if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
      candidate = j;
    }
    chosen.push_back(candidate);
  }
  for (const BitIndex bit : chosen) child.flip(bit);
  return child;
}

BitVector uniform_crossover(const BitVector& a, const BitVector& b, Rng& rng) {
  ABSQ_CHECK(a.size() == b.size(), "crossover parents must have equal size");
  BitVector child(a.size());
  // Word-parallel: a random mask picks each bit from a or b.
  const auto words_a = a.words();
  const auto words_b = b.words();
  for (std::size_t w = 0; w < words_a.size(); ++w) {
    const std::uint64_t mask = rng();
    // One store per 64 bits; set_word masks any tail bits past size().
    child.set_word(w, (words_a[w] & mask) | (words_b[w] & ~mask));
  }
  return child;
}

std::size_t pick_parent_rank(std::size_t pool_size, double bias, Rng& rng) {
  ABSQ_CHECK(pool_size >= 1, "empty pool");
  const double u = rng.uniform01();
  const double biased = std::pow(u, std::max(bias, 1e-9));
  auto rank = static_cast<std::size_t>(biased * static_cast<double>(pool_size));
  return std::min(rank, pool_size - 1);
}

BitVector generate_target(const SolutionPool& pool, const GaConfig& config,
                          Rng& rng) {
  ABSQ_CHECK(!pool.empty(), "cannot breed from an empty pool");
  const BitIndex n = pool.entry(0).bits.size();

  if (rng.chance(config.random_prob)) return BitVector::random(n, rng);

  const auto& parent_a =
      pool.entry(pick_parent_rank(pool.size(), config.selection_bias, rng))
          .bits;
  if (pool.size() >= 2 && rng.chance(config.crossover_prob)) {
    // Draw a second, distinct parent.
    std::size_t rank_b =
        pick_parent_rank(pool.size(), config.selection_bias, rng);
    const BitVector* parent_b = &pool.entry(rank_b).bits;
    for (int attempt = 0; attempt < 4 && *parent_b == parent_a; ++attempt) {
      rank_b = pick_parent_rank(pool.size(), config.selection_bias, rng);
      parent_b = &pool.entry(rank_b).bits;
    }
    return uniform_crossover(parent_a, *parent_b, rng);
  }
  const auto flips = static_cast<BitIndex>(std::max(
      1.0, std::round(config.mutation_rate * static_cast<double>(n))));
  return mutate(parent_a, flips, rng);
}

}  // namespace absq
