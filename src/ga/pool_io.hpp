// Solution-pool persistence: checkpoint a run's population and resume it
// later (or seed a new run with a previously found population).
//
// Format:
//
//     pool <n_bits> <entries>
//     <energy-or-'?'> <bit string>        one line per entry, best first
//
// '?' marks not-yet-evaluated entries (kUnevaluated). Reading validates
// sizes, bit strings and distinctness through the pool's own insert path.
#pragma once

#include <iosfwd>
#include <string>

#include "ga/solution_pool.hpp"

namespace absq {

void write_pool(std::ostream& out, const SolutionPool& pool);
void write_pool_file(const std::string& path, const SolutionPool& pool);

/// Reads a pool snapshot into a pool of capacity `capacity` (0 = use the
/// snapshot's entry count). Entries beyond capacity are dropped worst-first
/// (the file is best-first).
[[nodiscard]] SolutionPool read_pool(std::istream& in,
                                     std::size_t capacity = 0);
[[nodiscard]] SolutionPool read_pool_file(const std::string& path,
                                          std::size_t capacity = 0);

}  // namespace absq
