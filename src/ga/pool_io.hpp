// Solution-pool persistence: checkpoint a run's population and resume it
// later (or seed a new run with a previously found population).
//
// Pool format:
//
//     pool <n_bits> <entries>
//     <energy-or-'?'> <bit string>        one line per entry, best first
//
// '?' marks not-yet-evaluated entries (kUnevaluated). Reading validates
// sizes, bit strings and distinctness through the pool's own insert path.
//
// Run-checkpoint format (the crash-safe run snapshot written by AbsSolver
// and absq_solve --checkpoint):
//
//     absq-checkpoint 1
//     seed <u64>
//     elapsed <seconds>
//     flips <k> <flips_0> ... <flips_k-1>   per-device lifetime flips
//     pool <n_bits> <entries>
//     <entries as above>
//     end
//
// The trailing `end` sentinel is mandatory: a snapshot interrupted by a
// crash is detected and rejected with a clear "truncated" error instead
// of silently resuming from half a population.
//
// All file writes are *atomic*: content goes to a temp file in the same
// directory, is fsync'd, and is renamed over the destination — a crash
// (or injected `pool_io.write` fault) mid-checkpoint can never truncate a
// previously good snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ga/solution_pool.hpp"
#include "util/check.hpp"

namespace absq {

/// The PR-3 crash-safe write primitive, shared with the serve layer's job
/// journal: `writer` streams into `path + ".tmp"`, the temp file is
/// fsync'd and renamed over `path`, and the containing directory is
/// fsync'd — a crash mid-write can never leave a torn destination. On any
/// failure (including an injected `pool_io.write` fault) the temp file is
/// removed and the previous `path` content is untouched.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Best-effort fsync of a file or directory path (no-op on failure and on
/// platforms without fsync) — the durability half of atomic_write_file,
/// exposed for append-style writers that manage their own fds.
void fsync_path_best_effort(const std::string& path, bool directory);

/// An empty or header-only pool snapshot: the file exists and may even be
/// well-formed, but holds no usable entries to resume from. Typed so
/// callers (absq_solve --resume, the serving layer's per-job resume) can
/// distinguish "nothing to warm-start" from a corrupt file.
class EmptyPoolError : public CheckError {
 public:
  explicit EmptyPoolError(const std::string& what) : CheckError(what) {}
};

void write_pool(std::ostream& out, const SolutionPool& pool);
void write_pool_file(const std::string& path, const SolutionPool& pool);

/// Reads a pool snapshot into a pool of capacity `capacity` (0 = use the
/// snapshot's entry count). Entries beyond capacity are dropped worst-first
/// (the file is best-first).
[[nodiscard]] SolutionPool read_pool(std::istream& in,
                                     std::size_t capacity = 0);
[[nodiscard]] SolutionPool read_pool_file(const std::string& path,
                                          std::size_t capacity = 0);

/// Everything needed to resume a run: the population plus the run-level
/// context (seed, wall-clock already spent, per-device flip totals).
/// `pool` is shared so it can be handed to AbsConfig::warm_start as-is.
struct RunCheckpoint {
  std::uint64_t seed = 0;
  double elapsed_seconds = 0.0;
  /// Lifetime committed flips per device slot at checkpoint time.
  std::vector<std::uint64_t> device_flips;
  std::shared_ptr<const SolutionPool> pool;  ///< never null after read
};

void write_checkpoint(std::ostream& out, const RunCheckpoint& checkpoint);
/// Atomic (temp + fsync + rename): the destination always holds either
/// the previous complete snapshot or the new one, never a prefix.
void write_checkpoint_file(const std::string& path,
                           const RunCheckpoint& checkpoint);

/// Reads and validates a run checkpoint (`capacity` as in read_pool).
/// Truncated or partially written snapshots are rejected with a
/// "truncated" CheckError, not a generic parse failure.
[[nodiscard]] RunCheckpoint read_checkpoint(std::istream& in,
                                            std::size_t capacity = 0);
[[nodiscard]] RunCheckpoint read_checkpoint_file(const std::string& path,
                                                 std::size_t capacity = 0);

}  // namespace absq
