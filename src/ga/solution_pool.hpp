// SolutionPool — the host-side population of Section 3.1.
//
// A bounded set of solutions kept (a) sorted ascending by energy and
// (b) pairwise distinct. Both properties are the paper's premature-
// convergence defence: duplicates are rejected on insert (binary search over
// the sorted range, O(log m) comparisons), and a full pool replaces its
// worst member only when the newcomer is strictly better. Solutions arriving
// from the initial randomization carry no energy yet — the host *never*
// computes E(X) (an ABS invariant) — and are ranked after every evaluated
// solution until a device reports them back.
#pragma once

#include <cstddef>
#include <limits>
#include <unordered_set>
#include <vector>

#include "qubo/bit_vector.hpp"
#include "qubo/types.hpp"
#include "util/rng.hpp"

namespace absq {

/// Sentinel energy for not-yet-evaluated solutions ("+∞" in the paper).
inline constexpr Energy kUnevaluated = std::numeric_limits<Energy>::max();

class SolutionPool {
 public:
  struct Entry {
    BitVector bits;
    Energy energy = kUnevaluated;

    /// Sort key: ascending energy, ties broken by bit pattern so that
    /// equality of keys is equality of solutions.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.energy != b.energy) return a.energy < b.energy;
      return a.bits < b.bits;
    }
  };

  /// A pool holding at most `capacity` solutions (m in the paper).
  explicit SolutionPool(std::size_t capacity);

  /// Fills the pool with `capacity` distinct uniform-random n-bit vectors,
  /// all unevaluated — host Step 1.
  void initialize_random(BitIndex n, Rng& rng);

  /// Inserts a solution with its device-reported energy — host Step 3.
  /// Returns false (and changes nothing) when an identical bit pattern is
  /// already present (regardless of its recorded energy), or when the pool
  /// is full and `energy` is not strictly better than the current worst.
  bool insert(const BitVector& bits, Energy energy);

  /// True iff an identical bit pattern is present.
  [[nodiscard]] bool contains(const BitVector& bits) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// i-th best entry (0 = lowest energy).
  [[nodiscard]] const Entry& entry(std::size_t i) const { return entries_[i]; }

  /// The incumbent best entry; pool must be non-empty.
  [[nodiscard]] const Entry& best() const { return entries_.front(); }

  /// Energy of the best *evaluated* entry, or kUnevaluated when none is.
  [[nodiscard]] Energy best_energy() const {
    return entries_.empty() ? kUnevaluated : entries_.front().energy;
  }

  /// Number of entries whose energy a device has reported.
  [[nodiscard]] std::size_t evaluated_count() const;

  /// Churn counters since construction / the last initialize_random():
  /// accepted inserts, inserts rejected as duplicates, inserts rejected
  /// because the pool was full and the newcomer no better, and members
  /// evicted to make room for a better newcomer. The GA's selection
  /// pressure and diversity health are read off these (duplicates ↑ =
  /// premature convergence; evictions ≈ insertions once the pool fills).
  [[nodiscard]] std::uint64_t insertions() const { return insertions_; }
  [[nodiscard]] std::uint64_t duplicates_rejected() const {
    return duplicates_rejected_;
  }
  [[nodiscard]] std::uint64_t full_rejections() const {
    return full_rejections_;
  }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Invariant check (sortedness + distinctness); used by tests and debug
  /// assertions, O(m·n/64).
  [[nodiscard]] bool check_invariants() const;

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;  // sorted ascending
  std::uint64_t insertions_ = 0;
  std::uint64_t duplicates_rejected_ = 0;
  std::uint64_t full_rejections_ = 0;
  std::uint64_t evictions_ = 0;
  // Bit patterns currently in the pool. The paper detects duplicates with
  // the (energy, bits) binary search alone, which is sound only when equal
  // solutions always arrive with equal energies; the hash set additionally
  // covers the unevaluated-random corner, making distinctness unconditional.
  std::unordered_set<BitVector, BitVectorHash> present_;
};

}  // namespace absq
