#include "ga/pool_io.hpp"

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "util/check.hpp"
#include "util/failpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ABSQ_HAVE_FSYNC 1
#endif

namespace absq {

/// Best-effort fsync of a path (file or directory). Durability belt and
/// braces — a failed fsync degrades to ordinary buffered-write semantics.
void fsync_path_best_effort(const std::string& path, bool directory) {
#ifdef ABSQ_HAVE_FSYNC
  const int fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
#else
  (void)path;
  (void)directory;
#endif
}

/// Writes via `writer` into `path + ".tmp"`, fsyncs, then renames over
/// `path`. On any failure (including an injected pool_io.write fault) the
/// temp file is removed and the previous `path` content is untouched.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::trunc);
    ABSQ_CHECK(out.good(), "cannot open '" << tmp << "' for writing");
    writer(out);
    out.flush();
    ABSQ_CHECK(out.good(), "write to '" << tmp << "' failed");
  } catch (...) {
    (void)std::remove(tmp.c_str());
    throw;
  }
  fsync_path_best_effort(tmp, /*directory=*/false);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    ABSQ_CHECK(false, "cannot rename '" << tmp << "' to '" << path << "'");
  }
  const std::size_t slash = path.find_last_of('/');
  fsync_path_best_effort(slash == std::string::npos
                             ? std::string(".")
                             : path.substr(0, slash + 1),
                         /*directory=*/true);
}

void write_pool(std::ostream& out, const SolutionPool& pool) {
  const BitIndex bits = pool.empty() ? 0 : pool.entry(0).bits.size();
  out << "pool " << bits << ' ' << pool.size() << '\n';
  // Fault-injection site: a throw here leaves a header-only partial
  // serialization — the mid-write crash the atomic rename must absorb.
  fail::maybe_fail("pool_io.write");
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto& entry = pool.entry(i);
    if (entry.energy == kUnevaluated) {
      out << "? ";
    } else {
      out << entry.energy << ' ';
    }
    out << entry.bits.to_string() << '\n';
  }
}

void write_pool_file(const std::string& path, const SolutionPool& pool) {
  atomic_write_file(path,
                    [&pool](std::ostream& out) { write_pool(out, pool); });
}

SolutionPool read_pool(std::istream& in, std::size_t capacity) {
  std::string tag;
  if (!(in >> tag)) {
    // Distinguish "nothing there at all" from a malformed header: an
    // empty file is a typed no-entries condition, not corruption.
    throw EmptyPoolError("empty pool file — nothing to resume from");
  }
  long long bits = 0;
  long long entries = 0;
  ABSQ_CHECK(tag == "pool" && in >> bits >> entries,
             "expected 'pool <bits> <entries>' header");
  ABSQ_CHECK(bits >= 0 && bits <= static_cast<long long>(kMaxBits),
             "bit count out of range");
  if (entries == 0) {
    throw EmptyPoolError(
        "header-only pool snapshot (0 entries) — nothing to resume from");
  }
  ABSQ_CHECK(entries >= 1, "negative entry count in pool header");
  if (capacity == 0) capacity = static_cast<std::size_t>(entries);

  SolutionPool pool(capacity);
  for (long long i = 0; i < entries; ++i) {
    std::string energy_token;
    std::string bit_string;
    ABSQ_CHECK(in >> energy_token >> bit_string,
               "pool snapshot truncated at entry "
                   << i << " of " << entries
                   << " — partially written snapshot rejected");
    ABSQ_CHECK(bit_string.size() == static_cast<std::size_t>(bits),
               "entry " << i << " has " << bit_string.size()
                        << " bits, header says " << bits);
    Energy energy = kUnevaluated;
    if (energy_token != "?") {
      try {
        std::size_t consumed = 0;
        energy = std::stoll(energy_token, &consumed);
        ABSQ_CHECK(consumed == energy_token.size(),
                   "entry " << i << ": bad energy '" << energy_token << "'");
      } catch (const std::invalid_argument&) {
        ABSQ_CHECK(false,
                   "entry " << i << ": bad energy '" << energy_token << "'");
      } catch (const std::out_of_range&) {
        ABSQ_CHECK(false, "entry " << i << ": energy out of range");
      }
    }
    // Inserting through the normal path re-establishes distinctness and
    // order; beyond-capacity worse entries are naturally rejected.
    (void)pool.insert(BitVector::from_string(bit_string), energy);
  }
  if (pool.empty()) {
    throw EmptyPoolError("snapshot contained no usable entries");
  }
  return pool;
}

SolutionPool read_pool_file(const std::string& path, std::size_t capacity) {
  std::ifstream in(path);
  ABSQ_CHECK(in.good(), "cannot open '" << path << "' for reading");
  return read_pool(in, capacity);
}

void write_checkpoint(std::ostream& out, const RunCheckpoint& checkpoint) {
  ABSQ_CHECK(checkpoint.pool != nullptr && !checkpoint.pool->empty(),
             "checkpoint needs a non-empty pool");
  out << "absq-checkpoint 1\n";
  out << "seed " << checkpoint.seed << '\n';
  out << "elapsed " << checkpoint.elapsed_seconds << '\n';
  out << "flips " << checkpoint.device_flips.size();
  for (const std::uint64_t flips : checkpoint.device_flips) {
    out << ' ' << flips;
  }
  out << '\n';
  write_pool(out, *checkpoint.pool);
  out << "end\n";
}

void write_checkpoint_file(const std::string& path,
                           const RunCheckpoint& checkpoint) {
  atomic_write_file(path, [&checkpoint](std::ostream& out) {
    write_checkpoint(out, checkpoint);
  });
}

RunCheckpoint read_checkpoint(std::istream& in, std::size_t capacity) {
  std::string magic;
  long long version = 0;
  ABSQ_CHECK(in >> magic >> version && magic == "absq-checkpoint",
             "not a run checkpoint (expected 'absq-checkpoint <version>')");
  ABSQ_CHECK(version == 1, "unsupported checkpoint version " << version);

  RunCheckpoint checkpoint;
  std::string field;
  ABSQ_CHECK(in >> field >> checkpoint.seed && field == "seed",
             "checkpoint missing 'seed' field");
  ABSQ_CHECK(in >> field >> checkpoint.elapsed_seconds && field == "elapsed",
             "checkpoint missing 'elapsed' field");
  ABSQ_CHECK(checkpoint.elapsed_seconds >= 0.0,
             "checkpoint elapsed time must be >= 0");
  long long device_count = 0;
  ABSQ_CHECK(in >> field >> device_count && field == "flips",
             "checkpoint missing 'flips' field");
  ABSQ_CHECK(device_count >= 0 && device_count <= 1 << 20,
             "implausible checkpoint device count " << device_count);
  checkpoint.device_flips.reserve(static_cast<std::size_t>(device_count));
  for (long long d = 0; d < device_count; ++d) {
    std::uint64_t flips = 0;
    ABSQ_CHECK(in >> flips, "checkpoint truncated in device flip counters — "
                            "partially written snapshot rejected");
    checkpoint.device_flips.push_back(flips);
  }
  checkpoint.pool =
      std::make_shared<const SolutionPool>(read_pool(in, capacity));
  ABSQ_CHECK(in >> field && field == "end",
             "checkpoint missing 'end' sentinel — "
             "partially written snapshot rejected");
  return checkpoint;
}

RunCheckpoint read_checkpoint_file(const std::string& path,
                                   std::size_t capacity) {
  std::ifstream in(path);
  ABSQ_CHECK(in.good(), "cannot open '" << path << "' for reading");
  return read_checkpoint(in, capacity);
}

}  // namespace absq
