#include "ga/pool_io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace absq {

void write_pool(std::ostream& out, const SolutionPool& pool) {
  const BitIndex bits = pool.empty() ? 0 : pool.entry(0).bits.size();
  out << "pool " << bits << ' ' << pool.size() << '\n';
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto& entry = pool.entry(i);
    if (entry.energy == kUnevaluated) {
      out << "? ";
    } else {
      out << entry.energy << ' ';
    }
    out << entry.bits.to_string() << '\n';
  }
}

void write_pool_file(const std::string& path, const SolutionPool& pool) {
  std::ofstream out(path);
  ABSQ_CHECK(out.good(), "cannot open '" << path << "' for writing");
  write_pool(out, pool);
  ABSQ_CHECK(out.good(), "write to '" << path << "' failed");
}

SolutionPool read_pool(std::istream& in, std::size_t capacity) {
  std::string tag;
  long long bits = 0;
  long long entries = 0;
  ABSQ_CHECK(in >> tag >> bits >> entries && tag == "pool",
             "expected 'pool <bits> <entries>' header");
  ABSQ_CHECK(bits >= 0 && bits <= static_cast<long long>(kMaxBits),
             "bit count out of range");
  ABSQ_CHECK(entries >= 1, "empty pool snapshot");
  if (capacity == 0) capacity = static_cast<std::size_t>(entries);

  SolutionPool pool(capacity);
  for (long long i = 0; i < entries; ++i) {
    std::string energy_token;
    std::string bit_string;
    ABSQ_CHECK(in >> energy_token >> bit_string,
               "pool snapshot truncated at entry " << i);
    ABSQ_CHECK(bit_string.size() == static_cast<std::size_t>(bits),
               "entry " << i << " has " << bit_string.size()
                        << " bits, header says " << bits);
    Energy energy = kUnevaluated;
    if (energy_token != "?") {
      try {
        std::size_t consumed = 0;
        energy = std::stoll(energy_token, &consumed);
        ABSQ_CHECK(consumed == energy_token.size(),
                   "entry " << i << ": bad energy '" << energy_token << "'");
      } catch (const std::invalid_argument&) {
        ABSQ_CHECK(false,
                   "entry " << i << ": bad energy '" << energy_token << "'");
      } catch (const std::out_of_range&) {
        ABSQ_CHECK(false, "entry " << i << ": energy out of range");
      }
    }
    // Inserting through the normal path re-establishes distinctness and
    // order; beyond-capacity worse entries are naturally rejected.
    (void)pool.insert(BitVector::from_string(bit_string), energy);
  }
  ABSQ_CHECK(!pool.empty(), "snapshot contained no usable entries");
  return pool;
}

SolutionPool read_pool_file(const std::string& path, std::size_t capacity) {
  std::ifstream in(path);
  ABSQ_CHECK(in.good(), "cannot open '" << path << "' for reading");
  return read_pool(in, capacity);
}

}  // namespace absq
