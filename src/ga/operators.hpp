// Genetic operators and target generation — Section 2.2.1.
//
// The host breeds *target solutions* for the devices: it never evaluates
// them (the devices do, via the straight search). The paper specifies the
// operator set — mutation (flip some random bits of one parent), uniform
// crossover (each bit from either parent), copy — but not the mixing
// probabilities or parent selection; those are configuration here, with
// defaults chosen by the ablation bench, and the defaults favour
// rank-biased parent selection which matches the sorted-pool design.
#pragma once

#include <cstdint>

#include "ga/solution_pool.hpp"
#include "qubo/bit_vector.hpp"
#include "util/rng.hpp"

namespace absq {

/// Returns a copy of `parent` with `flip_count` distinct random bits
/// flipped (clamped to [1, n]).
[[nodiscard]] BitVector mutate(const BitVector& parent, BitIndex flip_count,
                               Rng& rng);

/// Uniform crossover: each bit is drawn from parent `a` or `b` with equal
/// probability. Sizes must match.
[[nodiscard]] BitVector uniform_crossover(const BitVector& a,
                                          const BitVector& b, Rng& rng);

/// How targets are bred from the pool.
struct GaConfig {
  /// Probability a target is produced by crossover; otherwise mutation.
  double crossover_prob = 0.5;
  /// Bits flipped by a mutation, as a fraction of n (at least 1 bit).
  double mutation_rate = 0.02;
  /// Parent selection bias: parents are drawn at rank ⌊m·u^bias⌋ for
  /// uniform u, so bias > 1 favours low-energy (better) ranks; 1 = uniform.
  double selection_bias = 2.0;
  /// Probability a target is a fresh uniform-random vector (exploration /
  /// pool reseeding). Applied before the crossover-vs-mutation choice.
  double random_prob = 0.02;
};

/// Breeds one target solution from the pool. The pool must be non-empty.
[[nodiscard]] BitVector generate_target(const SolutionPool& pool,
                                        const GaConfig& config, Rng& rng);

/// Rank-biased parent pick (see GaConfig::selection_bias).
[[nodiscard]] std::size_t pick_parent_rank(std::size_t pool_size, double bias,
                                           Rng& rng);

}  // namespace absq
