// Wall-clock stopwatch and deadline helpers used by solver stopping criteria
// and by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace absq {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  [[nodiscard]] std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// A fixed point in the future; cheap to test against in hot loops.
class Deadline {
 public:
  /// A deadline `seconds` from now. Non-positive values mean "already due";
  /// use Deadline::never() for "no limit".
  explicit Deadline(double seconds)
      : due_(Stopwatch::Clock::now() +
             std::chrono::duration_cast<Stopwatch::Clock::duration>(
                 std::chrono::duration<double>(seconds))) {}

  /// A deadline that never expires.
  static Deadline never() {
    Deadline d(0.0);
    d.due_ = Stopwatch::Clock::time_point::max();
    return d;
  }

  [[nodiscard]] bool expired() const {
    return Stopwatch::Clock::now() >= due_;
  }

 private:
  Stopwatch::Clock::time_point due_;
};

}  // namespace absq
