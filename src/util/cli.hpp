// A small command-line flag parser shared by the examples and the benchmark
// harnesses. Supports `--name value`, `--name=value` and boolean
// `--name` / `--no-name` forms, prints a generated --help, and rejects
// unknown flags so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace absq {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers a flag; `help` is shown in --help. The default value doubles
  /// as documentation of the flag's type.
  void add_flag(const std::string& name, std::string default_value,
                std::string help);
  void add_flag(const std::string& name, std::int64_t default_value,
                std::string help);
  void add_flag(const std::string& name, double default_value,
                std::string help);
  void add_flag(const std::string& name, bool default_value, std::string help);

  /// Parses argv. Returns false (after printing help) when --help was given.
  /// Throws CheckError on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional arguments (everything that is not a --flag).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_help() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };

  struct Flag {
    Kind kind;
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Flag& find(const std::string& name, Kind expected) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace absq
