// A small command-line flag parser shared by the examples and the benchmark
// harnesses. Supports `--name value`, `--name=value` and boolean
// `--name` / `--no-name` forms, prints a generated --help, and rejects
// unknown flags so typos in sweep scripts fail loudly.
//
// Every tool shares the same conventions: `--help` prints usage to stdout
// and exits 0, `--version` prints the release and exits 0, and any user
// error (unknown flag, malformed value) prints the message plus usage to
// stderr and exits 2 — tool mains catch CliUsageError and return
// kUsageExitCode.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace absq {

/// Release string printed by --version (matches the CMake project version).
inline constexpr const char* kVersion = "1.0.0";

/// Conventional exit code for command-line usage errors.
inline constexpr int kUsageExitCode = 2;

/// A user error on the command line (unknown flag, malformed value). By the
/// time it is thrown, parse() has already printed the message and usage to
/// stderr — the tool just exits with kUsageExitCode.
class CliUsageError : public CheckError {
 public:
  explicit CliUsageError(const std::string& what) : CheckError(what) {}
};

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers a flag; `help` is shown in --help. The default value doubles
  /// as documentation of the flag's type.
  void add_flag(const std::string& name, std::string default_value,
                std::string help);
  void add_flag(const std::string& name, std::int64_t default_value,
                std::string help);
  void add_flag(const std::string& name, double default_value,
                std::string help);
  void add_flag(const std::string& name, bool default_value, std::string help);

  /// Parses argv. Returns false when --help (usage to stdout) or --version
  /// was given — the tool should exit 0. Throws CliUsageError on unknown
  /// flags or malformed values, after printing the error and usage to
  /// stderr.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional arguments (everything that is not a --flag).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_help() const { print_help(stdout); }
  void print_help(std::FILE* out) const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };

  struct Flag {
    Kind kind;
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Flag& find(const std::string& name, Kind expected) const;
  /// Prints `message` and usage to stderr, then throws CliUsageError.
  [[noreturn]] void fail_usage(const std::string& message) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace absq
