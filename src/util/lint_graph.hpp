// Whole-project structural index behind absq_lint's graph rules
// (ABSQ006–ABSQ009).
//
// lint.cpp's per-file rules see one token stream at a time; the rules here
// need *structure*: which function calls which, which module includes
// which, which mutexes a function acquires and in what order. The indexer
// below is an AST-lite pass over the comment/literal-stripped text — no
// compiler, no headers resolved, a deliberate trade: it runs over the
// whole tree in tens of milliseconds and never needs a compilation
// database, at the cost of name-based call resolution (overloads collapse
// to one node, a member call `x.step()` links to every `step` method).
// Over-approximation is the right bias for the rules built on top — a
// missed edge hides a deadlock, a spurious edge costs one annotated
// suppression — and every rule honours `// absq-lint: allow(...)` at any
// call frame.
//
// What the index records, per file:
//   - quoted #include edges (module dependency graph for ABSQ006)
//   - function definitions with their enclosing class/namespace, body
//     spans, and line numbers
//   - call sites inside each body (callee name, explicit qualifier,
//     member-call flag, locks held at the call)
//   - lock-guard acquisitions (lock_guard/unique_lock/scoped_lock/
//     shared_lock and direct .lock() on *mutex* members), with the
//     brace-scope tracked so "held while acquiring" is known
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"
#include "util/lint.hpp"

namespace absq::lint {

/// Thrown on a malformed lint_layers.toml manifest.
class ManifestError : public CheckError {
 public:
  explicit ManifestError(const std::string& what) : CheckError(what) {}
};

/// One call site inside a function body.
struct CallSite {
  std::string name;       ///< unqualified callee name
  std::string qualifier;  ///< written qualifier ("Device", "fail", ...) or ""
  bool member_call = false;  ///< receiver.name(...) / receiver->name(...)
  std::size_t line = 0;
  /// Qualified mutex ids held when the call is made (lock-order edges
  /// propagate through calls).
  std::vector<std::string> held_locks;
};

/// One lock acquisition, in body order.
struct LockSite {
  std::string mutex;  ///< qualified id, e.g. "JobManager::mutex_"
  std::size_t line = 0;
  /// Mutexes already held when this one is acquired (the intra-function
  /// lock-order edges). A multi-mutex std::scoped_lock acquires its
  /// arguments simultaneously: they share one snapshot and contribute no
  /// edges among themselves.
  std::vector<std::string> held;
};

/// One function (or method) definition.
struct FunctionDef {
  std::string file;        ///< repo-relative path of the defining file
  std::string class_name;  ///< enclosing class or explicit qualifier; "" free
  std::string name;
  std::size_t line = 0;        ///< 1-based line of the definition
  std::size_t body_begin = 0;  ///< offsets into the file's stripped text
  std::size_t body_end = 0;
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
};

/// One quoted #include directive.
struct IncludeEdge {
  std::string target;  ///< path as written, e.g. "qubo/energy.hpp"
  std::size_t line = 0;
};

/// Everything indexed from one file.
struct FileIndex {
  std::string path;      ///< repo-relative, forward slashes
  std::string stripped;  ///< comment/literal-stripped content
  Suppressions allows;
  std::vector<IncludeEdge> includes;
  std::vector<FunctionDef> functions;
  /// Namespace names opened in this file ("absq", "fail", ...) — lets
  /// resolve() treat `fail::triggered(...)` as a free-function call.
  std::vector<std::string> namespaces;
};

/// First path component that names a module: "src/qubo/energy.hpp" →
/// "qubo", "tools/absq_lint.cpp" → "tools". Include targets are written
/// relative to src/, so "qubo/energy.hpp" → "qubo" as well.
std::string module_of(std::string_view path);

class ProjectIndex {
 public:
  /// Parses one file into the index. `path` must be repo-relative with
  /// forward slashes.
  void add_file(std::string_view path, std::string_view content);

  [[nodiscard]] const std::vector<FileIndex>& files() const { return files_; }
  [[nodiscard]] const FileIndex* file(std::string_view path) const;

  /// Name-based call resolution (see the header comment for the rules):
  /// qualified calls match class/namespace + name, member calls match any
  /// method of that name, plain calls match free functions and methods of
  /// the caller's own class.
  [[nodiscard]] std::vector<const FunctionDef*> resolve(
      const FunctionDef& caller, const CallSite& call) const;

  /// First definition matching (class_name, name); nullptr when absent.
  [[nodiscard]] const FunctionDef* find_function(std::string_view class_name,
                                                 std::string_view name) const;

  /// The hot-path root definitions present in this index (resolved from
  /// hot_path_roots()).
  [[nodiscard]] std::vector<const FunctionDef*> hot_roots() const;

  /// Every FunctionDef reachable from the given roots through resolve(),
  /// to `depth` call frames (the roots themselves are included).
  [[nodiscard]] std::vector<const FunctionDef*> reachable(
      const std::vector<const FunctionDef*>& roots, std::size_t depth) const;

  [[nodiscard]] const Suppressions* allows_for(std::string_view path) const;

 private:
  std::vector<FileIndex> files_;
  // Lookup tables, rebuilt lazily after add_file().
  mutable bool dirty_ = true;
  mutable std::map<std::string, std::vector<const FunctionDef*>, std::less<>>
      by_name_;
  mutable std::vector<std::string> namespaces_;  // sorted, for qualifier calls
  void rebuild() const;
};

/// The module layering manifest (lint_layers.toml): `module = [deps]`
/// entries under a `[modules]` section; "*" permits everything (the
/// harness layers: tools/tests/bench/examples).
struct LayerManifest {
  std::map<std::string, std::vector<std::string>> allowed;

  [[nodiscard]] bool known(const std::string& module) const;
  [[nodiscard]] bool permits(const std::string& from,
                             const std::string& to) const;
  /// Parses manifest text; throws ManifestError on malformed input.
  static LayerManifest parse(std::string_view text);
};

/// How many call frames ABSQ007/ABSQ008/ABSQ009 explore from their roots.
inline constexpr std::size_t kGraphDepth = 8;

// --- graph rules -----------------------------------------------------------

/// ABSQ006: every cross-module include (and explicitly-qualified call)
/// edge must be permitted by the manifest.
std::vector<Diagnostic> check_layering(const ProjectIndex& index,
                                       const LayerManifest& manifest);

/// ABSQ007: no blocking token in any function reachable from a hot-path
/// root. Suppressions (`transitive-blocking` or `hot-path-blocking`) are
/// honoured at the blocking site and at every call site along the chain.
std::vector<Diagnostic> check_transitive_blocking(const ProjectIndex& index);

/// ABSQ008: the global lock-order graph (mutex A held while acquiring B,
/// intra-function and through calls) must be acyclic.
std::vector<Diagnostic> check_lock_order(const ProjectIndex& index);

/// ABSQ009: memory_order_relaxed only inside functions reachable from a
/// hot-path root, or at sites annotated `allow(relaxed-order)` /
/// `allow(atomic-audit)`; memory_order_consume is always flagged.
std::vector<Diagnostic> check_atomic_audit(const ProjectIndex& index);

/// Runs the per-file rules (ABSQ001–ABSQ005) over every file plus the
/// graph rules above. `manifest` may be null (ABSQ006 skipped).
struct ProjectFile {
  std::string path;
  std::string content;
};
std::vector<Diagnostic> lint_project(const std::vector<ProjectFile>& files,
                                     const LayerManifest* manifest);

/// Graphviz dump for offline inspection: the module dependency graph, the
/// lock-order graph, and the call graph, as three digraphs in one stream.
std::string dump_dot(const ProjectIndex& index);

}  // namespace absq::lint
