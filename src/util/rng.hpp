// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the library (GA operators, SA acceptance,
// workload generators) takes an explicit RNG so that whole solver runs are
// reproducible from a single seed. We use xoshiro256** seeded through
// splitmix64, the combination recommended by the xoshiro authors: splitmix64
// decorrelates arbitrary user seeds, and independent streams are derived by
// jumping the seed, which lets each simulated device / CUDA block own a
// private stream without synchronization.
#pragma once

#include <cstdint>
#include <limits>

namespace absq {

/// splitmix64 — used only for seeding and cheap hashing.
/// Reference: Sebastiano Vigna, public-domain implementation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix an arbitrary 64-bit value into a well-distributed hash.
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
///
/// Satisfies std::uniform_random_bit_generator, so it can be plugged into
/// <random> distributions, though the bundled helpers below avoid libstdc++
/// distribution implementations to keep results identical across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through splitmix64 so that any seed —
  /// including 0 — produces a healthy state.
  explicit constexpr Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's multiply-shift rejection method — unbiased and branch-light.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply; __uint128_t is available on all GCC/Clang targets
    // this library supports.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1] semantics).
  constexpr bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child stream. Streams obtained from distinct
  /// `index` values are decorrelated via splitmix64 over (state, index).
  constexpr Rng split(std::uint64_t index) const {
    std::uint64_t s = state_[0] ^ rotl(state_[3], 13) ^
                      (0x9e3779b97f4a7c15ULL * (index + 1));
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace absq
