#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace absq {
namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "string";
    case 1: return "int";
    case 2: return "double";
    case 3: return "bool";
    default: return "?";
  }
}

}  // namespace

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {
  add_flag("help", false, "print this help and exit");
  add_flag("version", false, "print the release version and exit");
}

void CliParser::add_flag(const std::string& name, std::string default_value,
                         std::string help) {
  flags_[name] = Flag{Kind::kString, default_value, std::move(default_value),
                      std::move(help)};
}

void CliParser::add_flag(const std::string& name, std::int64_t default_value,
                         std::string help) {
  auto text = std::to_string(default_value);
  flags_[name] = Flag{Kind::kInt, text, text, std::move(help)};
}

void CliParser::add_flag(const std::string& name, double default_value,
                         std::string help) {
  auto text = std::to_string(default_value);
  flags_[name] = Flag{Kind::kDouble, text, text, std::move(help)};
}

void CliParser::add_flag(const std::string& name, bool default_value,
                         std::string help) {
  const char* text = default_value ? "true" : "false";
  flags_[name] = Flag{Kind::kBool, text, text, std::move(help)};
}

void CliParser::fail_usage(const std::string& message) const {
  std::fprintf(stderr, "error: %s\n\n", message.c_str());
  print_help(stderr);
  throw CliUsageError(message);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }

    // --no-name for booleans.
    bool negated = false;
    auto it = flags_.find(name);
    if (it == flags_.end() && name.rfind("no-", 0) == 0) {
      it = flags_.find(name.substr(3));
      if (it != flags_.end() && it->second.kind == Kind::kBool) negated = true;
    }
    if (it == flags_.end()) fail_usage("unknown flag --" + name);
    Flag& flag = it->second;

    if (flag.kind == Kind::kBool) {
      if (!has_value) {
        flag.value = negated ? "false" : "true";
      } else {
        if (value != "true" && value != "false") {
          fail_usage("--" + name + " expects true/false, got '" + value +
                     "'");
        }
        flag.value = value;
      }
      continue;
    }

    if (!has_value) {
      if (i + 1 >= argc) fail_usage("--" + name + " is missing a value");
      value = argv[++i];
    }

    // Validate numeric forms eagerly so sweeps fail at startup.
    try {
      std::size_t pos = 0;
      if (flag.kind == Kind::kInt) {
        (void)std::stoll(value, &pos);
        if (pos != value.size()) {
          fail_usage("--" + name + ": trailing junk in '" + value + "'");
        }
      } else if (flag.kind == Kind::kDouble) {
        (void)std::stod(value, &pos);
        if (pos != value.size()) {
          fail_usage("--" + name + ": trailing junk in '" + value + "'");
        }
      }
    } catch (const std::invalid_argument&) {
      fail_usage("--" + name + ": '" + value + "' is not a " +
                 kind_name(static_cast<int>(flag.kind)));
    } catch (const std::out_of_range&) {
      fail_usage("--" + name + ": '" + value + "' out of range");
    }
    flag.value = std::move(value);
  }

  if (get_bool("help")) {
    print_help();
    return false;
  }
  if (get_bool("version")) {
    std::printf("absqubo %s\n", kVersion);
    return false;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name,
                                       Kind expected) const {
  auto it = flags_.find(name);
  ABSQ_CHECK(it != flags_.end(), "flag --" << name << " was never registered");
  ABSQ_CHECK(it->second.kind == expected,
             "flag --" << name << " read with the wrong type accessor");
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

bool CliParser::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "true";
}

void CliParser::print_help(std::FILE* out) const {
  std::fprintf(out, "%s\n\nFlags:\n", summary_.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(out, "  --%-24s %s (%s, default: %s)\n", name.c_str(),
                 flag.help.c_str(), kind_name(static_cast<int>(flag.kind)),
                 flag.default_value.empty() ? "\"\""
                                            : flag.default_value.c_str());
  }
}

}  // namespace absq
