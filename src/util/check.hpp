// Lightweight precondition / invariant checking.
//
// ABSQ_CHECK(cond, msg)    — always-on check; throws absq::CheckError.
// ABSQ_DCHECK(cond, msg)   — debug-only check; compiled out in NDEBUG builds.
//
// The library follows the C++ Core Guidelines convention that broken
// preconditions on the public API surface are reported by exception, so a
// host application embedding the solver can recover (e.g. reject one bad
// instance file without killing a long-running service).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace absq {

/// Error thrown when an ABSQ_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace absq

#define ABSQ_CHECK(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::absq::detail::check_failed(#cond, __FILE__, __LINE__,      \
                                   (std::ostringstream{} << msg)   \
                                       .str());                    \
    }                                                              \
  } while (false)

#ifdef NDEBUG
#define ABSQ_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#else
#define ABSQ_DCHECK(cond, msg) ABSQ_CHECK(cond, msg)
#endif
