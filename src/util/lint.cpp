#include "util/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <utility>

namespace absq::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// 1-based line number of byte offset `pos`.
std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

/// Whole-word occurrence of `word` at `pos`?
bool word_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (pos != 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident(text[end]);
}

/// Find the next whole-word occurrence of `word` at or after `from`.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Rule configuration
// ---------------------------------------------------------------------------

/// ABSQ001: files allowed to contain naked new/delete — RAII wrappers that
/// exist to own such allocations. Currently none; add the owning wrapper's
/// path here if one ever appears.
constexpr std::array<std::string_view, 0> kRaiiWrapperFiles{};

/// ABSQ002: paths where memory_order_relaxed is part of the design — the
/// observability layer's statistic shards and the mailbox counter protocol
/// (paper Fig. 5). Everything else needs an inline allow with a rationale.
constexpr std::array<std::string_view, 2> kRelaxedAllowedPrefixes{
    "src/obs/", "src/sim/mailbox."};

/// ABSQ004: std bases that count as "typed" roots of the hierarchy.
constexpr std::string_view kStdTypedBases[] = {
    "runtime_error", "logic_error",    "invalid_argument",
    "out_of_range",  "domain_error",   "length_error",
    "range_error",   "overflow_error", "underflow_error",
    "system_error",
};

const std::vector<RuleInfo> kRules = {
    {"ABSQ001", "naked-new",
     "no naked new/delete outside approved RAII wrappers"},
    {"ABSQ002", "relaxed-order",
     "memory_order_relaxed only in src/obs/ and the mailbox counters"},
    {"ABSQ003", "hot-path-blocking",
     "no blocking calls (sleep, socket I/O, pool_io, stdio) in "
     "SearchBlock/Device iteration hot paths"},
    {"ABSQ004", "error-hierarchy",
     "every *Error type derives publicly from the typed-exception "
     "hierarchy (CheckError, a std error type, or another *Error)"},
    {"ABSQ005", "include-hygiene",
     "headers start with #pragma once, no `using namespace`, project "
     "headers included by quoted path without ../"},
    // ABSQ006–ABSQ009 are whole-project graph rules; their engines live in
    // util/lint_graph.cpp and run through lint_project(), not lint_file().
    {"ABSQ006", "layering",
     "module dependencies follow the checked-in layering DAG "
     "(lint_layers.toml); violations name the offending include/call edge"},
    {"ABSQ007", "transitive-blocking",
     "no blocking call reachable from a hot-path root through the call "
     "graph (ABSQ003 explored transitively, suppressions honoured at any "
     "frame)"},
    {"ABSQ008", "lock-order",
     "lock acquisition order is globally consistent: the graph of "
     "mutex-held-while-acquiring edges (including through calls) is "
     "acyclic"},
    {"ABSQ009", "atomic-audit",
     "memory_order_relaxed only in functions reachable from a hot-path "
     "root (the lock-cheap telemetry design) or at sites annotated with a "
     "rationale"},
};

struct Context {
  std::string_view path;
  std::string_view raw;
  std::string_view stripped;
  const Suppressions* allows = nullptr;
  std::vector<Diagnostic>* out = nullptr;

  void report(const char* code, const char* rule_name, std::size_t line,
              std::string message) const {
    if (allows->allowed(rule_name, line)) return;
    out->push_back(Diagnostic{code, std::string(path), line,
                              std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// ABSQ001 — naked new/delete
// ---------------------------------------------------------------------------

void check_naked_new(const Context& ctx) {
  for (std::string_view allowed : kRaiiWrapperFiles) {
    if (ctx.path == allowed) return;
  }
  const std::string_view text = ctx.stripped;
  for (std::size_t pos = find_word(text, "new", 0);
       pos != std::string_view::npos; pos = find_word(text, "new", pos + 1)) {
    if (pos > 0) {
      // `operator new` overloads are declarations, not allocations.
      const std::size_t before = text.find_last_not_of(" \t", pos - 1);
      if (before != std::string_view::npos &&
          ends_with(text.substr(0, before + 1), "operator")) {
        continue;
      }
    }
    ctx.report("ABSQ001", "naked-new", line_of(text, pos),
               "naked `new` — allocate through std::make_unique, a "
               "container, or an approved RAII wrapper");
  }
  for (std::size_t pos = find_word(text, "delete", 0);
       pos != std::string_view::npos;
       pos = find_word(text, "delete", pos + 1)) {
    if (pos > 0) {
      const std::size_t before = text.find_last_not_of(" \t\n", pos - 1);
      if (before != std::string_view::npos) {
        // `= delete;` (deleted function) and `operator delete`.
        if (text[before] == '=') continue;
        if (ends_with(text.substr(0, before + 1), "operator")) continue;
      }
    }
    ctx.report("ABSQ001", "naked-new", line_of(text, pos),
               "naked `delete` — ownership must live in an RAII wrapper");
  }
}

// ---------------------------------------------------------------------------
// ABSQ002 — relaxed memory order
// ---------------------------------------------------------------------------

void check_relaxed_order(const Context& ctx) {
  for (std::string_view prefix : kRelaxedAllowedPrefixes) {
    if (starts_with(ctx.path, prefix)) return;
  }
  const std::string_view text = ctx.stripped;
  for (std::size_t pos = find_word(text, "memory_order_relaxed", 0);
       pos != std::string_view::npos;
       pos = find_word(text, "memory_order_relaxed", pos + 1)) {
    ctx.report("ABSQ002", "relaxed-order", line_of(text, pos),
               "memory_order_relaxed outside src/obs/ and the mailbox "
               "counters — justify with an absq-lint allow or use a "
               "stronger ordering");
  }
}

// ---------------------------------------------------------------------------
// ABSQ003 — blocking calls in hot paths
// ---------------------------------------------------------------------------

/// Return [body_begin, body_end) of the function definition whose qualified
/// name `Class::name` starts at or after `from`, or npos/npos.
std::pair<std::size_t, std::size_t> find_function_body(
    std::string_view text, std::string_view qualified, std::size_t from) {
  for (std::size_t pos = text.find(qualified, from);
       pos != std::string_view::npos;
       pos = text.find(qualified, pos + qualified.size())) {
    if (!word_at(text, pos, qualified)) continue;
    // Definition looks like `Class::name (...) ... {`; a `;` first means a
    // declaration or a qualified call in an expression — skip those.
    std::size_t cursor = pos + qualified.size();
    while (cursor < text.size() &&
           std::isspace(static_cast<unsigned char>(text[cursor])) != 0) {
      ++cursor;
    }
    if (cursor >= text.size() || text[cursor] != '(') continue;
    const std::size_t stop = text.find_first_of(";{", cursor);
    if (stop == std::string_view::npos || text[stop] == ';') continue;
    // Brace-track to the end of the body.
    std::size_t depth = 0;
    for (std::size_t i = stop; i < text.size(); ++i) {
      if (text[i] == '{') ++depth;
      if (text[i] == '}') {
        --depth;
        if (depth == 0) return {stop + 1, i};
      }
    }
    return {stop + 1, text.size()};
  }
  return {std::string_view::npos, std::string_view::npos};
}

void check_hot_paths(const Context& ctx) {
  for (const HotPathRoot& spec : hot_path_roots()) {
    if (ctx.path != spec.file) continue;
    for (std::string_view function : spec.functions) {
      std::string qualified(spec.class_name);
      qualified += "::";
      qualified += function;
      const auto [begin, end] =
          find_function_body(ctx.stripped, qualified, 0);
      if (begin == std::string_view::npos) continue;
      const std::string_view body = ctx.stripped.substr(begin, end - begin);
      for (std::string_view token : blocking_tokens()) {
        for (std::size_t pos = find_word(body, token, 0);
             pos != std::string_view::npos;
             pos = find_word(body, token, pos + 1)) {
          ctx.report("ABSQ003", "hot-path-blocking",
                     line_of(ctx.stripped, begin + pos),
                     "blocking call `" + std::string(token) + "` inside " +
                         qualified +
                         " — hot paths must stay non-blocking; queue the "
                         "work for the host loop instead");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ABSQ004 — error types must join the typed-exception hierarchy
// ---------------------------------------------------------------------------

bool base_clause_ok(std::string_view clause, bool is_struct) {
  // Must inherit publicly (structs default to public).
  if (!is_struct && clause.find("public") == std::string_view::npos) {
    return false;
  }
  // The last identifier of any base must be a typed root or another *Error.
  std::size_t pos = 0;
  while (pos < clause.size()) {
    if (!is_ident(clause[pos])) {
      ++pos;
      continue;
    }
    std::size_t end = pos;
    while (end < clause.size() && is_ident(clause[end])) ++end;
    const std::string_view ident = clause.substr(pos, end - pos);
    if (ends_with(ident, "Error")) return true;
    for (std::string_view base : kStdTypedBases) {
      if (ident == base) return true;
    }
    pos = end;
  }
  return false;
}

void check_error_hierarchy(const Context& ctx) {
  const std::string_view text = ctx.stripped;
  for (std::string_view keyword : {"class", "struct"}) {
    const bool is_struct = keyword == "struct";
    for (std::size_t pos = find_word(text, keyword, 0);
         pos != std::string_view::npos;
         pos = find_word(text, keyword, pos + 1)) {
      std::size_t cursor = pos + keyword.size();
      while (cursor < text.size() &&
             std::isspace(static_cast<unsigned char>(text[cursor])) != 0) {
        ++cursor;
      }
      std::size_t name_end = cursor;
      while (name_end < text.size() && is_ident(text[name_end])) ++name_end;
      const std::string_view name = text.substr(cursor, name_end - cursor);
      if (!ends_with(name, "Error") || name == "Error") continue;
      const std::size_t stop = text.find_first_of(";{", name_end);
      if (stop == std::string_view::npos || text[stop] == ';') {
        continue;  // forward declaration
      }
      const std::string_view clause = text.substr(name_end, stop - name_end);
      if (clause.find(':') == std::string_view::npos ||
          !base_clause_ok(clause, is_struct)) {
        ctx.report("ABSQ004", "error-hierarchy", line_of(text, pos),
                   std::string(name) +
                       " must derive publicly from the typed-exception "
                       "hierarchy (CheckError, a std error type, or "
                       "another *Error)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ABSQ005 — include hygiene (headers only)
// ---------------------------------------------------------------------------

void check_include_hygiene(const Context& ctx) {
  if (!ends_with(ctx.path, ".hpp")) return;
  const std::string_view text = ctx.stripped;

  // (a) first significant line is `#pragma once`.
  const std::size_t first = text.find_first_not_of(" \t\n\r");
  if (first == std::string_view::npos ||
      !starts_with(text.substr(first), "#pragma once")) {
    ctx.report("ABSQ005", "include-hygiene", 1,
               "header must open with #pragma once (before any other "
               "code)");
  }

  // (b) no `using namespace` leaking into every includer.
  for (std::size_t pos = find_word(text, "using", 0);
       pos != std::string_view::npos;
       pos = find_word(text, "using", pos + 1)) {
    std::size_t cursor = pos + 5;
    while (cursor < text.size() &&
           std::isspace(static_cast<unsigned char>(text[cursor])) != 0) {
      ++cursor;
    }
    if (word_at(text, cursor, "namespace") &&
        starts_with(text.substr(cursor), "namespace")) {
      ctx.report("ABSQ005", "include-hygiene", line_of(text, pos),
                 "`using namespace` in a header leaks into every "
                 "includer");
    }
  }

  // (c)/(d) include forms. The stripper blanks quoted paths, so scan the
  // raw text; anchoring at line start keeps commented examples quiet.
  const std::string_view raw = ctx.raw;
  for (std::size_t pos = raw.find("#include");
       pos != std::string_view::npos;
       pos = raw.find("#include", pos + 1)) {
    const std::size_t bol = raw.rfind('\n', pos) + 1;  // npos+1 == 0
    if (raw.find_first_not_of(" \t", bol) != pos) continue;
    const std::size_t eol = raw.find('\n', pos);
    const std::string_view line_text =
        raw.substr(pos, eol == std::string_view::npos ? raw.size() - pos
                                                      : eol - pos);
    if (line_text.find(".hpp>") != std::string_view::npos) {
      ctx.report("ABSQ005", "include-hygiene", line_of(text, pos),
                 "project headers are included with quotes relative to "
                 "src/, not angle brackets");
    }
    if (line_text.find("\"../") != std::string_view::npos) {
      ctx.report("ABSQ005", "include-hygiene", line_of(text, pos),
                 "parent-relative include breaks standalone compilation; "
                 "include relative to src/");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

Suppressions collect_suppressions(std::string_view src) {
  Suppressions out;
  static constexpr std::string_view kTag = "absq-lint: allow";
  for (std::size_t pos = src.find(kTag); pos != std::string_view::npos;
       pos = src.find(kTag, pos + 1)) {
    std::size_t cursor = pos + kTag.size();
    const bool file_scope = starts_with(src.substr(cursor), "-file");
    if (file_scope) cursor += 5;
    if (cursor >= src.size() || src[cursor] != '(') continue;
    const std::size_t close = src.find(')', cursor);
    if (close == std::string_view::npos) continue;
    std::string rule(src.substr(cursor + 1, close - cursor - 1));
    if (file_scope) {
      out.file_allows.push_back(std::move(rule));
    } else {
      out.line_allows.emplace_back(std::move(rule), line_of(src, pos));
    }
  }
  return out;
}

const std::vector<HotPathRoot>& hot_path_roots() {
  // The per-iteration call chain of the bulk search: SearchBlock's search
  // loop and the Device scheduling loops that drive it. ABSQ003 scans
  // exactly these bodies; ABSQ007/ABSQ009 explore the call graph from them.
  static const std::vector<HotPathRoot> kHotPaths = {
      {"src/abs/search_block.cpp",
       "SearchBlock",
       {"iterate", "adapt_on_stagnation", "staggered_offset"}},
      {"src/abs/device.cpp",
       "Device",
       {"iterate_block", "run_legacy_loop", "run_shard",
        "step_all_blocks_once"}},
      // The flip kernels themselves — every form runs inside the loops
      // above, once per flip.
      {"src/qubo/delta_state.cpp",
       "DeltaState",
       {"flip", "flip_tracked", "flip_dense", "flip_sparse",
        "flip_tracked_dense_scalar", "flip_tracked_dense_simd",
        "flip_tracked_sparse", "repair_sparse", "argmin_window",
        "argmin_span"}},
      // Every BlockAlgorithm::step is a Step-4b inner loop — one call per
      // iteration, flips per call — and inherits SearchBlock's constraints.
      {"src/portfolio/block_algorithm.cpp", "MinDeltaAlgorithm", {"step"}},
      {"src/portfolio/block_algorithm.cpp", "SaAlgorithm", {"step"}},
      {"src/portfolio/block_algorithm.cpp",
       "MultiStartAlgorithm",
       {"step", "restart"}},
      // The mailbox shard protocol (paper Fig. 5) runs once per iteration
      // on the device workers.
      {"src/sim/mailbox.cpp", "TargetBuffer", {"push", "poll"}},
      {"src/sim/mailbox.cpp", "SolutionBuffer", {"push"}},
  };
  return kHotPaths;
}

const std::vector<std::string_view>& blocking_tokens() {
  // Matched as whole words on comment/literal-stripped text.
  static const std::vector<std::string_view> kBlockingTokens = {
      "sleep_for",       "sleep_until",    "usleep",   "nanosleep",
      "recv",            "send",           "accept",   "connect",
      "write_pool_file", "read_pool_file", "ofstream", "ifstream",
      "fstream",         "fopen",          "fwrite",   "fprintf",
      "printf",          "cout",           "cerr",     "getline",
      "fflush",          "fread",          "fgets",    "system",
      "popen",
  };
  return kBlockingTokens;
}

std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  enum class State : std::uint8_t {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_terminator;  // )delim" for the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident(src[i - 1]))) {
          const std::size_t open = src.find('(', i + 2);
          if (open != std::string_view::npos) {
            // assign(1, ')') rather than = ")": GCC 12 -Wrestrict false
            // positive (PR105651) on const char* assignment under -Werror.
            raw_terminator.assign(1, ')');
            raw_terminator += src.substr(i + 2, open - (i + 2));
            raw_terminator += '"';
            state = State::kRawString;
            for (std::size_t j = i; j <= open && j < src.size(); ++j) {
              if (src[j] != '\n') out[j] = ' ';
            }
            i = open;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && !(i != 0 && is_ident(src[i - 1]))) {
          // Skip digit separators (1'000'000) via the identifier check.
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t j = i; j < i + raw_terminator.size(); ++j) {
            out[j] = ' ';
          }
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Diagnostic> lint_file(std::string_view path,
                                  std::string_view content) {
  std::vector<Diagnostic> out;
  const Suppressions allows = collect_suppressions(content);
  const std::string stripped = strip_comments_and_strings(content);
  const Context ctx{path, content, stripped, &allows, &out};
  check_naked_new(ctx);
  check_relaxed_order(ctx);
  check_hot_paths(ctx);
  check_error_hierarchy(ctx);
  check_include_hygiene(ctx);
  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    return a.line != b.line ? a.line < b.line : a.code < b.code;
  });
  return out;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ':' << d.line << ": [" << d.code << "] " << d.message;
  return os.str();
}

std::vector<std::pair<std::string, std::size_t>> count_by_rule(
    const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const RuleInfo& rule : rules()) out.emplace_back(rule.code, 0);
  for (const Diagnostic& d : diagnostics) {
    const auto it = std::find_if(out.begin(), out.end(), [&](const auto& e) {
      return e.first == d.code;
    });
    if (it != out.end()) {
      ++it->second;
    } else {
      out.emplace_back(d.code, 1);  // future-proof: unknown code still counted
    }
  }
  return out;
}

namespace {

/// Minimal JSON string escape for the SARIF writer (util cannot depend on
/// serve::Json — see to_sarif's declaration).
std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream os;
  os << "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{"
        "\"tool\":{\"driver\":{"
        "\"name\":\"absq_lint\",\"version\":\"1.0.0\","
        "\"rules\":[";
  bool first = true;
  for (const RuleInfo& rule : rules()) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << json_quote(rule.code)
       << ",\"name\":" << json_quote(rule.name)
       << ",\"shortDescription\":{\"text\":" << json_quote(rule.summary)
       << "}}";
  }
  os << "]}},\"results\":[";
  first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) os << ',';
    first = false;
    os << "{\"ruleId\":" << json_quote(d.code)
       << ",\"level\":\"error\",\"message\":{\"text\":"
       << json_quote(d.message)
       << "},\"locations\":[{\"physicalLocation\":{"
          "\"artifactLocation\":{\"uri\":"
       << json_quote(d.file)
       << "},\"region\":{\"startLine\":" << d.line << "}}}]}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace absq::lint
