#include "util/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace absq::fail {
namespace {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(text, &consumed);
    ABSQ_CHECK(consumed == text.size(), "bad " << what << " '" << text << "'");
    return value;
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    ABSQ_CHECK(false, "bad " << what << " '" << text << "'");
  }
}

double parse_double(const std::string& text, const char* what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    ABSQ_CHECK(consumed == text.size(), "bad " << what << " '" << text << "'");
    return value;
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    ABSQ_CHECK(false, "bad " << what << " '" << text << "'");
  }
}

}  // namespace

Spec parse_spec(const std::string& text) {
  const std::vector<std::string> parts = split(text, ':');
  const std::string& mode = parts[0];
  Spec spec;
  if (mode == "off") {
    ABSQ_CHECK(parts.size() == 1, "'off' takes no arguments");
    spec.mode = Mode::kOff;
  } else if (mode == "once") {
    ABSQ_CHECK(parts.size() == 1, "'once' takes no arguments");
    spec.mode = Mode::kOnce;
  } else if (mode == "every") {
    ABSQ_CHECK(parts.size() == 2, "expected 'every:N'");
    spec.mode = Mode::kEveryNth;
    spec.every_n = parse_u64(parts[1], "every-N period");
    ABSQ_CHECK(spec.every_n >= 1, "'every:N' needs N >= 1");
  } else if (mode == "prob") {
    ABSQ_CHECK(parts.size() == 2 || parts.size() == 3,
               "expected 'prob:P[:seed]'");
    spec.mode = Mode::kProbability;
    spec.probability = parse_double(parts[1], "probability");
    ABSQ_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0,
               "probability must be in [0, 1], got " << spec.probability);
    if (parts.size() == 3) spec.seed = parse_u64(parts[2], "probability seed");
  } else if (mode == "stall") {
    ABSQ_CHECK(parts.size() == 2, "expected 'stall:SECONDS'");
    spec.mode = Mode::kStall;
    spec.stall_seconds = parse_double(parts[1], "stall duration");
    ABSQ_CHECK(spec.stall_seconds >= 0.0, "stall duration must be >= 0");
  } else {
    ABSQ_CHECK(false, "unknown fail-point mode '" << mode
                      << "' (once | every:N | prob:P[:seed] | stall:S | off)");
  }
  return spec;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Registry() {
  if (const char* env = std::getenv("ABSQ_FAILPOINTS");
      env != nullptr && *env != '\0') {
    arm_from_directives(env);
  }
}

void Registry::arm(const std::string& name, const Spec& spec) {
  ABSQ_CHECK(!name.empty(), "fail-point name must be non-empty");
  if (spec.mode == Mode::kOff) {
    disarm(name);
    return;
  }
  std::lock_guard lock(mutex_);
  auto [it, inserted] = points_.try_emplace(name);
  Point& point = it->second;
  point.spec = spec;
  point.calls = 0;
  point.fired = 0;
  point.rng = Rng(spec.seed);
  if (inserted) armed_points_.fetch_add(1, std::memory_order_release);
}

void Registry::disarm(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (points_.erase(name) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_release);
    stall_epoch_.fetch_add(1, std::memory_order_release);
  }
}

void Registry::disarm_all() {
  std::lock_guard lock(mutex_);
  if (!points_.empty()) {
    armed_points_.fetch_sub(static_cast<int>(points_.size()),
                            std::memory_order_release);
    points_.clear();
  }
  stall_epoch_.fetch_add(1, std::memory_order_release);
}

void Registry::cancel_stalls() {
  stall_epoch_.fetch_add(1, std::memory_order_release);
}

void Registry::arm_from_directives(const std::string& directives) {
  if (directives.empty()) return;
  for (const std::string& directive : split(directives, ',')) {
    if (directive.empty()) continue;
    const std::size_t eq = directive.find('=');
    ABSQ_CHECK(eq != std::string::npos && eq > 0,
               "fail-point directive must be 'name[@scope]=mode', got '"
                   << directive << "'");
    std::string name = directive.substr(0, eq);
    Spec spec = parse_spec(directive.substr(eq + 1));
    if (const std::size_t at = name.find('@'); at != std::string::npos) {
      spec.scope = parse_u64(name.substr(at + 1), "fail-point scope");
      name = name.substr(0, at);
    }
    arm(name, spec);
  }
}

bool Registry::fire(const char* name, std::optional<std::uint64_t> scope) {
  double stall_seconds = 0.0;
  std::uint64_t epoch_at_fire = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = points_.find(name);
    if (it == points_.end()) return false;
    Point& point = it->second;
    if (point.spec.scope.has_value() &&
        (!scope.has_value() || *scope != *point.spec.scope)) {
      return false;
    }
    ++point.calls;
    bool hit = false;
    switch (point.spec.mode) {
      case Mode::kOff: return false;
      case Mode::kOnce: hit = point.fired == 0; break;
      case Mode::kEveryNth: hit = point.calls % point.spec.every_n == 0; break;
      case Mode::kProbability: hit = point.rng.chance(point.spec.probability);
        break;
      case Mode::kStall: hit = true; break;
    }
    if (!hit) return false;
    ++point.fired;
    if (point.spec.mode != Mode::kStall) return true;
    stall_seconds = point.spec.stall_seconds;
    epoch_at_fire = stall_epoch_.load(std::memory_order_acquire);
  }

  // Stall outside the lock, in slices, so disarm()/cancel_stalls() can
  // recover the "hung" thread — an injected hang must never be permanent.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(stall_seconds));
  while (std::chrono::steady_clock::now() < deadline &&
         stall_epoch_.load(std::memory_order_acquire) == epoch_at_fire) {
    // Deliberate fault injection: the stall IS the fault; disarmed
    // failpoints cost one relaxed load on hot paths and never reach here.
    // absq-lint: allow(transitive-blocking) sliced cancellable stall by design
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

std::uint64_t Registry::hits(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

}  // namespace absq::fail
