// A minimal fixed-size worker pool.
//
// abs::Device creates one pool per simulated GPU (per start()/stop() cycle)
// and gives each worker a static shard of its CUDA-block analogues, so the
// block set runs over however many hardware threads the host actually has.
// The pool deliberately exposes only two primitives — submit() and
// wait_idle() — because the ABS host/device protocol is built on
// asynchronous mailboxes, not on futures: a device's workers loop until the
// stop flag; the host never joins on individual tasks (Device::stop()
// destroys the pool, which drains and joins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace absq {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (same contract as a detached std::thread).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace absq
