// A minimal fixed-size worker pool.
//
// abs::Device creates one pool per simulated GPU (per start()/stop() cycle)
// and gives each worker a static shard of its CUDA-block analogues, so the
// block set runs over however many hardware threads the host actually has.
// The pool deliberately exposes only three primitives — submit(),
// wait_idle() and failure() — because the ABS host/device protocol is
// built on asynchronous mailboxes, not on futures: a device's workers loop
// until the stop flag; the host never joins on individual tasks
// (Device::stop() destroys the pool, which drains and joins). failure()
// is the fault-isolation hook: a task that throws kills neither the
// worker nor the process — the first exception is captured for the owner
// to surface as a device failure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace absq {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. An exception escaping a task does NOT terminate the
  /// process: the first one is captured (see failure()) and the worker
  /// returns to the queue, so one bad task cannot take the pool down.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Does not
  /// rethrow captured task failures — poll failure() for those.
  void wait_idle();

  /// The first exception that escaped a task, or nullptr while none has.
  /// One relaxed load when the pool is healthy; the owner (Device, and
  /// through it the solver watchdog) polls this to detect worker death.
  [[nodiscard]] std::exception_ptr failure() const {
    if (!failed_.load(std::memory_order_acquire)) return nullptr;
    std::lock_guard lock(mutex_);
    return failure_;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::atomic<bool> failed_{false};
  std::exception_ptr failure_;  ///< first escaping task exception
  std::vector<std::thread> workers_;
};

}  // namespace absq
