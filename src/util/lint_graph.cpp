#include "util/lint_graph.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace absq::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

bool word_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (pos != 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident(text[end]);
}

std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string_view::npos;
}

std::string_view trim(std::string_view s) {
  const std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) return {};
  const std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Identifier ending just before `end` (exclusive); empty if none.
std::string_view ident_before(std::string_view text, std::size_t end) {
  std::size_t e = end;
  while (e > 0 &&
         std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  std::size_t b = e;
  while (b > 0 && is_ident(text[b - 1])) --b;
  if (b == e || std::isdigit(static_cast<unsigned char>(text[b])) != 0) {
    return {};
  }
  return text.substr(b, e - b);
}

/// Identifier starting at or after `from`.
std::string_view ident_at(std::string_view text, std::size_t from) {
  std::size_t b = from;
  while (b < text.size() &&
         std::isspace(static_cast<unsigned char>(text[b])) != 0) {
    ++b;
  }
  std::size_t e = b;
  while (e < text.size() && is_ident(text[e])) ++e;
  return text.substr(b, e - b);
}

bool is_control_keyword(std::string_view ident) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "for",      "while",    "switch",        "catch",
      "return",   "sizeof",   "alignof",  "alignas",       "decltype",
      "noexcept", "throw",    "co_await", "static_assert", "assert",
      "delete",   "new",      "typedef",  "using",         "case",
      "default",  "requires", "co_yield", "co_return",     "goto",
  };
  return kKeywords.count(ident) != 0;
}

// ---------------------------------------------------------------------------
// The scope/function parser
// ---------------------------------------------------------------------------

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind = Kind::kOther;
  std::string name;
  std::ptrdiff_t function = -1;  ///< index into FileIndex::functions
};

/// Head text of a `{`: everything back to the nearest ;, { or }.
std::string_view head_of(std::string_view text, std::size_t brace) {
  const std::size_t stop = text.find_last_of(";{}", brace == 0 ? 0 : brace - 1);
  const std::size_t begin = stop == std::string_view::npos ? 0 : stop + 1;
  return text.substr(begin, brace - begin);
}

struct HeadInfo {
  Scope::Kind kind = Scope::Kind::kOther;
  std::string name;        ///< function or class or namespace name
  std::string qualifier;   ///< `Device::iterate_block(` → "Device"
  std::vector<std::string> namespace_parts;  ///< for kNamespace
};

/// Classify what a `{` opens from its head text. Heuristic by design — see
/// the file comment in lint_graph.hpp.
HeadInfo classify_head(std::string_view head) {
  HeadInfo info;
  const std::size_t ns = find_word(head, "namespace", 0);
  if (ns != std::string_view::npos) {
    info.kind = Scope::Kind::kNamespace;
    std::size_t cursor = ns + 9;
    for (;;) {
      const std::string_view part = ident_at(head, cursor);
      if (part.empty() || part == "inline") {
        if (part != "inline") break;
        cursor = static_cast<std::size_t>(part.data() - head.data()) +
                 part.size();
        continue;
      }
      info.namespace_parts.emplace_back(part);
      cursor =
          static_cast<std::size_t>(part.data() - head.data()) + part.size();
      if (!starts_with(head.substr(cursor), "::")) break;
      cursor += 2;
    }
    return info;
  }
  if (find_word(head, "enum", 0) != std::string_view::npos) return info;

  // Function definition: `...name(params)... {` with balanced parens and no
  // top-level `=` or `?` (those are initializers / conditional expressions
  // with brace-init, not definitions).
  const std::size_t paren = head.find('(');
  if (paren != std::string_view::npos) {
    int depth = 0;
    bool rejected = false;
    for (const char c : head) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (depth == 0 && (c == '=' || c == '?')) rejected = true;
    }
    const std::string_view name = ident_before(head, paren);
    if (depth == 0 && !rejected && !name.empty() &&
        !is_control_keyword(name)) {
      info.kind = Scope::Kind::kFunction;
      info.name = std::string(name);
      const std::size_t name_begin =
          static_cast<std::size_t>(name.data() - head.data());
      if (name_begin >= 2 && head.substr(name_begin - 2, 2) == "::") {
        info.qualifier = std::string(ident_before(head, name_begin - 2));
      }
      return info;
    }
  }
  for (std::string_view keyword : {"class", "struct"}) {
    const std::size_t pos = find_word(head, keyword, 0);
    if (pos == std::string_view::npos) continue;
    const std::string_view name = ident_at(head, pos + keyword.size());
    if (name.empty()) continue;
    info.kind = Scope::Kind::kClass;
    info.name = std::string(name);
    return info;
  }
  return info;
}

// ---------------------------------------------------------------------------
// Body pass: call sites + lock acquisitions with held tracking
// ---------------------------------------------------------------------------

const std::set<std::string_view>& guard_types() {
  static const std::set<std::string_view> kGuards = {
      "lock_guard", "unique_lock", "shared_lock", "scoped_lock"};
  return kGuards;
}

/// Skip a balanced `<...>` starting at `pos` (which must be '<'); returns
/// the offset just past the closing '>', or `pos` if it does not look like
/// template arguments.
std::size_t skip_angles(std::string_view text, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < text.size() && i < pos + 400; ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      --depth;
      if (depth <= 0) return i + 1;
    }
    if (text[i] == ';' || text[i] == '{') break;
  }
  return pos;
}

/// Mutex id for one guard argument: the last member/identifier of the
/// expression, qualified by the enclosing class (or defining file for free
/// functions) so same-named members of different classes stay distinct.
std::string mutex_id(std::string_view expr, const FunctionDef& fn) {
  std::string_view e = trim(expr);
  while (!e.empty() && (e.front() == '*' || e.front() == '&' ||
                        e.front() == '(')) {
    e.remove_prefix(1);
  }
  while (!e.empty() && e.back() == ')') e.remove_suffix(1);
  std::size_t cut = e.rfind("->");
  if (cut != std::string_view::npos) {
    e = e.substr(cut + 2);
  } else if ((cut = e.rfind('.')) != std::string_view::npos) {
    e = e.substr(cut + 1);
  }
  if ((cut = e.rfind("::")) != std::string_view::npos) {
    // `Registry::instance_mutex` style — already qualified as written.
    return std::string(trim(e));
  }
  e = trim(e);
  if (e.empty()) return {};
  const std::string prefix =
      fn.class_name.empty() ? fn.file : fn.class_name;
  return prefix + "::" + std::string(e);
}

/// Split `a, b, c` on top-level commas.
std::vector<std::string_view> split_args(std::string_view args) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(args.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  if (begin < args.size()) out.push_back(args.substr(begin));
  return out;
}

struct HeldLock {
  int depth = 0;        ///< brace depth the guard lives at
  std::string mutex;
  std::string var;      ///< guard variable, for .unlock()/.lock() tracking
};

void scan_body(const std::string& text, FunctionDef& fn) {
  std::vector<HeldLock> held;
  int depth = 0;
  const auto held_ids = [&held] {
    std::vector<std::string> ids;
    ids.reserve(held.size());
    for (const HeldLock& h : held) ids.push_back(h.mutex);
    return ids;
  };

  for (std::size_t i = fn.body_begin;
       i < fn.body_end && i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const HeldLock& h) {
                                  return h.depth > depth;
                                }),
                 held.end());
      continue;
    }
    if (!is_ident(c) || (i > 0 && is_ident(text[i - 1]))) continue;

    std::size_t end = i;
    while (end < text.size() && is_ident(text[end])) ++end;
    const std::string_view ident(text.data() + i, end - i);

    // Guard declaration: lock_guard<...> name(args) / scoped_lock name(a,b).
    if (guard_types().count(ident) != 0) {
      std::size_t cursor = end;
      while (cursor < text.size() &&
             std::isspace(static_cast<unsigned char>(text[cursor])) != 0) {
        ++cursor;
      }
      if (cursor < text.size() && text[cursor] == '<') {
        cursor = skip_angles(text, cursor);
      }
      const std::string_view var = ident_at(text, cursor);
      if (!var.empty()) {
        cursor = static_cast<std::size_t>(var.data() - text.data()) +
                 var.size();
      }
      while (cursor < text.size() &&
             std::isspace(static_cast<unsigned char>(text[cursor])) != 0) {
        ++cursor;
      }
      if (cursor < text.size() && text[cursor] == '(') {
        int pd = 0;
        std::size_t close = cursor;
        for (; close < text.size(); ++close) {
          if (text[close] == '(') ++pd;
          if (text[close] == ')' && --pd == 0) break;
        }
        const std::string_view args(text.data() + cursor + 1,
                                    close - cursor - 1);
        // adopt_lock: mutex already held elsewhere; defer_lock/try_to_lock:
        // nothing is (unconditionally) acquired here. All three fall
        // outside "acquire while holding" — skip the declaration.
        const bool tagged =
            args.find("adopt_lock") != std::string_view::npos ||
            args.find("defer_lock") != std::string_view::npos ||
            args.find("try_to_lock") != std::string_view::npos;
        if (!tagged) {
          const std::vector<std::string> snapshot = held_ids();
          for (const std::string_view arg : split_args(args)) {
            std::string id = mutex_id(arg, fn);
            if (id.empty()) continue;
            fn.locks.push_back(
                LockSite{id, line_of(text, i), snapshot});
            held.push_back(HeldLock{depth, std::move(id),
                                    std::string(var)});
          }
        }
        i = close;
        continue;
      }
    }

    // receiver.lock() / receiver.unlock() — on guard variables or on
    // members whose name says mutex.
    if ((ident == "lock" || ident == "unlock") && i >= 1 &&
        (text[i - 1] == '.' ||
         (i >= 2 && text[i - 1] == '>' && text[i - 2] == '-'))) {
      std::size_t after = end;
      while (after < text.size() &&
             std::isspace(static_cast<unsigned char>(text[after])) != 0) {
        ++after;
      }
      const std::size_t recv_end = text[i - 1] == '.' ? i - 1 : i - 2;
      const std::string_view recv = ident_before(text, recv_end);
      if (after < text.size() && text[after] == '(' && !recv.empty()) {
        const bool is_guard_var =
            std::any_of(held.begin(), held.end(), [&](const HeldLock& h) {
              return h.var == recv;
            });
        const bool is_mutex =
            recv.find("mutex") != std::string_view::npos ||
            recv.find("mtx") != std::string_view::npos;
        if (ident == "unlock") {
          held.erase(std::remove_if(
                         held.begin(), held.end(),
                         [&](const HeldLock& h) {
                           return h.var == recv ||
                                  (is_mutex && h.mutex == mutex_id(recv, fn));
                         }),
                     held.end());
        } else if (is_mutex && !is_guard_var) {
          std::string id = mutex_id(recv, fn);
          fn.locks.push_back(LockSite{id, line_of(text, i), held_ids()});
          held.push_back(HeldLock{depth, std::move(id), ""});
        }
        continue;
      }
    }

    // Plain call site: ident directly followed by `(`.
    std::size_t after = end;
    while (after < text.size() &&
           std::isspace(static_cast<unsigned char>(text[after])) != 0) {
      ++after;
    }
    if (after >= text.size() || text[after] != '(') continue;
    if (is_control_keyword(ident)) continue;
    CallSite call;
    call.name = std::string(ident);
    call.line = line_of(text, i);
    call.held_locks = held_ids();
    if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
      call.qualifier = std::string(ident_before(text, i - 2));
    } else if (i >= 1 && text[i - 1] == '.') {
      call.member_call = true;
    } else if (i >= 2 && text[i - 1] == '>' && text[i - 2] == '-') {
      call.member_call = true;
    }
    fn.calls.push_back(std::move(call));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// module_of / ProjectIndex
// ---------------------------------------------------------------------------

std::string module_of(std::string_view path) {
  if (starts_with(path, "src/")) path.remove_prefix(4);
  const std::size_t slash = path.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(path.substr(0, slash));
}

void ProjectIndex::add_file(std::string_view path, std::string_view content) {
  FileIndex fi;
  fi.path = std::string(path);
  fi.allows = collect_suppressions(content);
  fi.stripped = strip_comments_and_strings(content);

  // Includes come from the RAW text — the stripper blanks quoted paths.
  for (std::size_t pos = content.find("#include");
       pos != std::string_view::npos;
       pos = content.find("#include", pos + 1)) {
    const std::size_t bol = content.rfind('\n', pos) + 1;  // npos+1 == 0
    if (content.find_first_not_of(" \t", bol) != pos) continue;
    const std::size_t open = content.find('"', pos + 8);
    const std::size_t eol = content.find('\n', pos);
    if (open == std::string_view::npos ||
        (eol != std::string_view::npos && open > eol)) {
      continue;  // angle include or malformed
    }
    const std::size_t close = content.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    fi.includes.push_back(
        IncludeEdge{std::string(content.substr(open + 1, close - open - 1)),
                    line_of(content, pos)});
  }

  // Scope walk over the stripped text: classify every `{`, record function
  // definitions with their enclosing class, pop on `}`.
  const std::string& text = fi.stripped;
  std::vector<Scope> scopes;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '}') {
      if (!scopes.empty()) {
        if (scopes.back().function >= 0) {
          fi.functions[static_cast<std::size_t>(scopes.back().function)]
              .body_end = i;
        }
        scopes.pop_back();
      }
      continue;
    }
    if (c != '{') continue;
    HeadInfo head = classify_head(head_of(text, i));
    Scope scope;
    scope.kind = head.kind;
    switch (head.kind) {
      case Scope::Kind::kNamespace:
        for (const std::string& part : head.namespace_parts) {
          if (std::find(fi.namespaces.begin(), fi.namespaces.end(), part) ==
              fi.namespaces.end()) {
            fi.namespaces.push_back(part);
          }
        }
        // `namespace a::b {` opens one brace for several names; track the
        // scope as one entry (names only matter for the namespaces_ set).
        scope.name = head.namespace_parts.empty()
                         ? std::string()
                         : head.namespace_parts.back();
        break;
      case Scope::Kind::kClass:
        scope.name = head.name;
        break;
      case Scope::Kind::kFunction: {
        FunctionDef fn;
        fn.file = fi.path;
        fn.name = head.name;
        if (!head.qualifier.empty()) {
          fn.class_name = head.qualifier;
        } else {
          // Innermost enclosing class scope, if any.
          for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (it->kind == Scope::Kind::kClass) {
              fn.class_name = it->name;
              break;
            }
            if (it->kind == Scope::Kind::kFunction) break;
          }
        }
        fn.line = line_of(text, i);
        fn.body_begin = i + 1;
        fn.body_end = text.size();
        scope.name = head.name;
        scope.function = static_cast<std::ptrdiff_t>(fi.functions.size());
        fi.functions.push_back(std::move(fn));
        break;
      }
      case Scope::Kind::kOther:
        break;
    }
    scopes.push_back(std::move(scope));
  }

  for (FunctionDef& fn : fi.functions) scan_body(text, fn);

  files_.push_back(std::move(fi));
  dirty_ = true;
}

const FileIndex* ProjectIndex::file(std::string_view path) const {
  for (const FileIndex& fi : files_) {
    if (fi.path == path) return &fi;
  }
  return nullptr;
}

const Suppressions* ProjectIndex::allows_for(std::string_view path) const {
  const FileIndex* fi = file(path);
  return fi == nullptr ? nullptr : &fi->allows;
}

void ProjectIndex::rebuild() const {
  if (!dirty_) return;
  by_name_.clear();
  namespaces_.clear();
  for (const FileIndex& fi : files_) {
    for (const FunctionDef& fn : fi.functions) {
      by_name_[fn.name].push_back(&fn);
    }
    for (const std::string& ns : fi.namespaces) {
      namespaces_.push_back(ns);
    }
  }
  std::sort(namespaces_.begin(), namespaces_.end());
  namespaces_.erase(std::unique(namespaces_.begin(), namespaces_.end()),
                    namespaces_.end());
  dirty_ = false;
}

std::vector<const FunctionDef*> ProjectIndex::resolve(
    const FunctionDef& caller, const CallSite& call) const {
  rebuild();
  std::vector<const FunctionDef*> out;
  const auto it = by_name_.find(call.name);
  if (it == by_name_.end()) return out;
  const std::vector<const FunctionDef*>& candidates = it->second;

  if (!call.qualifier.empty()) {
    for (const FunctionDef* fn : candidates) {
      if (fn->class_name == call.qualifier) out.push_back(fn);
    }
    if (out.empty() &&
        std::binary_search(namespaces_.begin(), namespaces_.end(),
                           call.qualifier)) {
      // `fail::triggered(...)` — namespace-qualified free function.
      for (const FunctionDef* fn : candidates) {
        if (fn->class_name.empty()) out.push_back(fn);
      }
    }
    return out;
  }
  if (call.member_call) {
    // `x.step(...)` — the receiver's type is unknown; link every method of
    // that name (over-approximation, see the header comment).
    for (const FunctionDef* fn : candidates) {
      if (!fn->class_name.empty()) out.push_back(fn);
    }
    return out;
  }
  // Plain call: free functions, plus same-class methods (implicit this).
  for (const FunctionDef* fn : candidates) {
    if (fn->class_name.empty() ||
        (!caller.class_name.empty() &&
         fn->class_name == caller.class_name)) {
      out.push_back(fn);
    }
  }
  return out;
}

const FunctionDef* ProjectIndex::find_function(std::string_view class_name,
                                               std::string_view name) const {
  for (const FileIndex& fi : files_) {
    for (const FunctionDef& fn : fi.functions) {
      if (fn.class_name == class_name && fn.name == name) return &fn;
    }
  }
  return nullptr;
}

std::vector<const FunctionDef*> ProjectIndex::hot_roots() const {
  std::vector<const FunctionDef*> out;
  for (const HotPathRoot& spec : hot_path_roots()) {
    const FileIndex* fi = file(spec.file);
    if (fi == nullptr) continue;
    for (const FunctionDef& fn : fi->functions) {
      if (fn.class_name != spec.class_name) continue;
      if (std::find(spec.functions.begin(), spec.functions.end(), fn.name) !=
          spec.functions.end()) {
        out.push_back(&fn);
      }
    }
  }
  return out;
}

std::vector<const FunctionDef*> ProjectIndex::reachable(
    const std::vector<const FunctionDef*>& roots, std::size_t depth) const {
  std::set<const FunctionDef*> seen(roots.begin(), roots.end());
  std::deque<std::pair<const FunctionDef*, std::size_t>> queue;
  for (const FunctionDef* fn : roots) queue.emplace_back(fn, 0);
  while (!queue.empty()) {
    const auto [fn, d] = queue.front();
    queue.pop_front();
    if (d >= depth) continue;
    for (const CallSite& call : fn->calls) {
      for (const FunctionDef* callee : resolve(*fn, call)) {
        if (seen.insert(callee).second) queue.emplace_back(callee, d + 1);
      }
    }
  }
  return {seen.begin(), seen.end()};
}

// ---------------------------------------------------------------------------
// LayerManifest
// ---------------------------------------------------------------------------

bool LayerManifest::known(const std::string& module) const {
  return allowed.count(module) != 0;
}

bool LayerManifest::permits(const std::string& from,
                            const std::string& to) const {
  if (from == to) return true;
  const auto it = allowed.find(from);
  if (it == allowed.end()) return false;
  for (const std::string& dep : it->second) {
    if (dep == "*" || dep == to) return true;
  }
  return false;
}

LayerManifest LayerManifest::parse(std::string_view text) {
  LayerManifest out;
  bool in_modules = false;
  std::size_t lineno = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t eol = text.find('\n', begin);
    std::string_view line =
        text.substr(begin, eol == std::string_view::npos ? text.size() - begin
                                                         : eol - begin);
    begin = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line != "[modules]") {
        throw ManifestError("lint_layers line " + std::to_string(lineno) +
                            ": unknown section " + std::string(line) +
                            " (only [modules] is defined)");
      }
      in_modules = true;
      continue;
    }
    if (!in_modules) {
      throw ManifestError("lint_layers line " + std::to_string(lineno) +
                          ": entry before [modules] section");
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ManifestError("lint_layers line " + std::to_string(lineno) +
                          ": expected `module = [\"dep\", ...]`");
    }
    const std::string name(trim(line.substr(0, eq)));
    std::string_view value = trim(line.substr(eq + 1));
    if (name.empty() || value.size() < 2 || value.front() != '[' ||
        value.back() != ']') {
      throw ManifestError("lint_layers line " + std::to_string(lineno) +
                          ": expected `module = [\"dep\", ...]`");
    }
    if (out.allowed.count(name) != 0) {
      throw ManifestError("lint_layers line " + std::to_string(lineno) +
                          ": duplicate module " + name);
    }
    std::vector<std::string> deps;
    value = value.substr(1, value.size() - 2);
    for (std::string_view item : split_args(value)) {
      item = trim(item);
      if (item.empty()) continue;
      if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
        throw ManifestError("lint_layers line " + std::to_string(lineno) +
                            ": dependencies must be quoted strings");
      }
      deps.emplace_back(item.substr(1, item.size() - 2));
    }
    out.allowed.emplace(name, std::move(deps));
  }
  if (!in_modules) {
    throw ManifestError("lint_layers manifest has no [modules] section");
  }
  return out;
}

// ---------------------------------------------------------------------------
// ABSQ006 — module layering
// ---------------------------------------------------------------------------

std::vector<Diagnostic> check_layering(const ProjectIndex& index,
                                       const LayerManifest& manifest) {
  std::vector<Diagnostic> out;
  const auto report = [&](const FileIndex& fi, std::size_t line,
                          std::string message) {
    if (fi.allows.allowed("layering", line)) return;
    out.push_back(Diagnostic{"ABSQ006", fi.path, line, std::move(message)});
  };

  for (const FileIndex& fi : index.files()) {
    const std::string from = module_of(fi.path);
    if (from.empty()) continue;
    if (!manifest.known(from)) {
      report(fi, 1,
             "module '" + from +
                 "' is not declared in lint_layers.toml — add it with its "
                 "allowed dependencies");
      continue;
    }
    for (const IncludeEdge& inc : fi.includes) {
      const std::string to = module_of(inc.target);
      if (to.empty() || to == from || !manifest.known(to)) continue;
      if (!manifest.permits(from, to)) {
        report(fi, inc.line,
               "layering violation: module '" + from + "' includes \"" +
                   inc.target + "\" but the manifest does not permit " +
                   from + " -> " + to);
      }
    }
    // Qualified calls that resolve into a forbidden module catch usage that
    // sneaks in through a transitive include.
    for (const FunctionDef& fn : fi.functions) {
      for (const CallSite& call : fn.calls) {
        if (call.qualifier.empty()) continue;
        for (const FunctionDef* callee : index.resolve(fn, call)) {
          const std::string to = module_of(callee->file);
          if (to.empty() || to == from || !manifest.known(to)) continue;
          if (!manifest.permits(from, to)) {
            report(fi, call.line,
                   "layering violation: module '" + from + "' calls " +
                       call.qualifier + "::" + call.name + " (defined in " +
                       callee->file + ") but the manifest does not permit " +
                       from + " -> " + to);
            break;  // one finding per call site
          }
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// ABSQ007 — transitive blocking calls from hot-path roots
// ---------------------------------------------------------------------------

namespace {

struct Frame {
  const FunctionDef* fn = nullptr;
  std::size_t call_line = 0;  ///< line in the CALLER where fn was entered
};

/// Is any frame's call site (in the caller's file) annotated away?
bool chain_allowed(const ProjectIndex& index,
                   const std::vector<Frame>& chain) {
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Suppressions* allows = index.allows_for(chain[i - 1].fn->file);
    if (allows == nullptr) continue;
    if (allows->allowed("transitive-blocking", chain[i].call_line) ||
        allows->allowed("hot-path-blocking", chain[i].call_line)) {
      return true;
    }
  }
  return false;
}

std::string chain_text(const std::vector<Frame>& chain) {
  std::string out;
  for (const Frame& frame : chain) {
    if (!out.empty()) out += " -> ";
    if (!frame.fn->class_name.empty()) {
      out += frame.fn->class_name;
      out += "::";
    }
    out += frame.fn->name;
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> check_transitive_blocking(const ProjectIndex& index) {
  std::vector<Diagnostic> out;
  std::set<std::string> reported;  // root|callee-file|line|token dedup

  for (const FunctionDef* root : index.hot_roots()) {
    // DFS with the first-found path kept as the reporting chain; each
    // function is visited once per root.
    std::set<const FunctionDef*> visited{root};
    std::vector<Frame> chain{{root, 0}};

    const std::function<void(const FunctionDef&, std::size_t)> visit =
        [&](const FunctionDef& fn, std::size_t depth) {
          if (depth > 0) {
            // Depth 0 is the root body — ABSQ003's token scan already owns
            // it; re-reporting here would double every direct finding.
            const FileIndex* fi = index.file(fn.file);
            if (fi != nullptr) {
              const std::string_view body(
                  fi->stripped.data() + fn.body_begin,
                  std::min(fn.body_end, fi->stripped.size()) - fn.body_begin);
              for (std::string_view token : blocking_tokens()) {
                for (std::size_t pos = find_word(body, token, 0);
                     pos != std::string_view::npos;
                     pos = find_word(body, token, pos + 1)) {
                  const std::size_t line =
                      line_of(fi->stripped, fn.body_begin + pos);
                  if (fi->allows.allowed("transitive-blocking", line) ||
                      fi->allows.allowed("hot-path-blocking", line)) {
                    continue;
                  }
                  if (chain_allowed(index, chain)) continue;
                  std::string key = chain[0].fn->class_name + "::" +
                                    chain[0].fn->name + "|" + fn.file + "|" +
                                    std::to_string(line) + "|" +
                                    std::string(token);
                  if (!reported.insert(std::move(key)).second) continue;
                  const std::size_t report_line =
                      chain.size() > 1 ? chain[1].call_line : fn.line;
                  out.push_back(Diagnostic{
                      "ABSQ007", chain[0].fn->file, report_line,
                      "blocking call `" + std::string(token) + "` at " +
                          fn.file + ":" + std::to_string(line) +
                          " is reachable from hot path " +
                          chain_text(chain) +
                          " — keep the chain non-blocking or annotate the "
                          "site with a rationale"});
                }
              }
            }
          }
          if (depth >= kGraphDepth) return;
          for (const CallSite& call : fn.calls) {
            for (const FunctionDef* callee : index.resolve(fn, call)) {
              if (!visited.insert(callee).second) continue;
              chain.push_back(Frame{callee, call.line});
              visit(*callee, depth + 1);
              chain.pop_back();
            }
          }
        };
    visit(*root, 0);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ABSQ008 — lock-order consistency
// ---------------------------------------------------------------------------

namespace {

struct LockEdge {
  std::string from;
  std::string to;
  std::string file;  ///< witness
  std::size_t line = 0;
};

/// All mutexes a function may acquire, directly or through calls, to
/// `depth` frames.
void acquired_closure(const ProjectIndex& index, const FunctionDef& fn,
                      std::size_t depth,
                      std::set<const FunctionDef*>& seen,
                      std::set<std::string>& out) {
  for (const LockSite& site : fn.locks) out.insert(site.mutex);
  if (depth == 0) return;
  for (const CallSite& call : fn.calls) {
    for (const FunctionDef* callee : index.resolve(fn, call)) {
      if (!seen.insert(callee).second) continue;
      acquired_closure(index, *callee, depth - 1, seen, out);
    }
  }
}

}  // namespace

std::vector<Diagnostic> check_lock_order(const ProjectIndex& index) {
  // 1. Collect held-while-acquiring edges: intra-function from the
  //    LockSite snapshots, cross-function by charging every lock a callee
  //    may take to the locks held at the call site.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  const auto add_edge = [&](std::string from, std::string to,
                            const std::string& file, std::size_t line) {
    if (from == to) return;
    const auto key = std::make_pair(from, to);
    if (edges.count(key) != 0) return;  // first witness wins
    edges.emplace(key, LockEdge{std::move(from), std::move(to), file, line});
  };

  for (const FileIndex& fi : index.files()) {
    for (const FunctionDef& fn : fi.functions) {
      for (const LockSite& site : fn.locks) {
        for (const std::string& held : site.held) {
          add_edge(held, site.mutex, fi.path, site.line);
        }
      }
      for (const CallSite& call : fn.calls) {
        if (call.held_locks.empty()) continue;
        std::set<std::string> acquired;
        std::set<const FunctionDef*> seen;
        for (const FunctionDef* callee : index.resolve(fn, call)) {
          if (!seen.insert(callee).second) continue;
          acquired_closure(index, *callee, kGraphDepth / 2, seen, acquired);
        }
        for (const std::string& to : acquired) {
          for (const std::string& held : call.held_locks) {
            add_edge(held, to, fi.path, call.line);
          }
        }
      }
    }
  }

  // 2. Find cycles in the mutex graph (DFS, back edges).
  std::map<std::string, std::vector<const LockEdge*>> graph;
  for (const auto& [key, edge] : edges) graph[edge.from].push_back(&edge);

  std::vector<Diagnostic> out;
  std::set<std::string> reported;  // canonical cycle key
  std::set<std::string> done;
  std::vector<const LockEdge*> stack;
  std::set<std::string> on_stack;

  const std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        on_stack.insert(node);
        const auto it = graph.find(node);
        if (it != graph.end()) {
          for (const LockEdge* edge : it->second) {
            if (on_stack.count(edge->to) != 0) {
              // Back edge — extract the cycle from the stack.
              std::vector<const LockEdge*> cycle;
              bool collecting = false;
              for (const LockEdge* frame : stack) {
                if (frame->from == edge->to) collecting = true;
                if (collecting) cycle.push_back(frame);
              }
              cycle.push_back(edge);
              // Canonical key: sorted participating mutexes.
              std::vector<std::string> nodes;
              for (const LockEdge* e : cycle) nodes.push_back(e->from);
              std::sort(nodes.begin(), nodes.end());
              std::string key;
              for (const std::string& n : nodes) key += n + "|";
              if (reported.count(key) != 0) continue;
              reported.insert(key);
              // Suppressed if any edge's witness line carries an allow.
              bool allowed = false;
              std::ostringstream desc;
              for (const LockEdge* e : cycle) {
                const Suppressions* allows = index.allows_for(e->file);
                if (allows != nullptr &&
                    allows->allowed("lock-order", e->line)) {
                  allowed = true;
                }
                desc << e->from << " -> " << e->to << " (" << e->file << ":"
                     << e->line << "); ";
              }
              if (allowed) continue;
              out.push_back(Diagnostic{
                  "ABSQ008", cycle.front()->file, cycle.front()->line,
                  "lock-order cycle: " + desc.str() +
                      "acquire these mutexes in one global order or "
                      "annotate the edge that can never deadlock"});
              continue;
            }
            if (done.count(edge->to) != 0) continue;
            stack.push_back(edge);
            visit(edge->to);
            stack.pop_back();
          }
        }
        on_stack.erase(node);
        done.insert(node);
      };

  for (const auto& [node, _] : graph) {
    if (done.count(node) == 0) visit(node);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ABSQ009 — atomic-ordering audit
// ---------------------------------------------------------------------------

std::vector<Diagnostic> check_atomic_audit(const ProjectIndex& index) {
  std::vector<Diagnostic> out;
  const std::vector<const FunctionDef*> hot =
      index.reachable(index.hot_roots(), kGraphDepth);
  const std::set<const FunctionDef*> hot_set(hot.begin(), hot.end());

  for (const FileIndex& fi : index.files()) {
    const std::string& text = fi.stripped;
    const auto allowed_at = [&](std::size_t line) {
      return fi.allows.allowed("atomic-audit", line) ||
             fi.allows.allowed("relaxed-order", line);
    };
    for (std::size_t pos = find_word(text, "memory_order_consume", 0);
         pos != std::string_view::npos;
         pos = find_word(text, "memory_order_consume", pos + 1)) {
      const std::size_t line = line_of(text, pos);
      if (allowed_at(line)) continue;
      out.push_back(Diagnostic{
          "ABSQ009", fi.path, line,
          "memory_order_consume is deprecated-in-practice (promoted to "
          "acquire by every compiler) — use memory_order_acquire"});
    }
    for (std::size_t pos = find_word(text, "memory_order_relaxed", 0);
         pos != std::string_view::npos;
         pos = find_word(text, "memory_order_relaxed", pos + 1)) {
      const std::size_t line = line_of(text, pos);
      if (allowed_at(line)) continue;
      const FunctionDef* enclosing = nullptr;
      for (const FunctionDef& fn : fi.functions) {
        if (pos >= fn.body_begin && pos < fn.body_end &&
            (enclosing == nullptr ||
             fn.body_begin > enclosing->body_begin)) {
          enclosing = &fn;  // innermost body containing the site
        }
      }
      if (enclosing != nullptr && hot_set.count(enclosing) != 0) continue;
      std::string where =
          enclosing == nullptr
              ? "outside any function body"
              : "in " +
                    (enclosing->class_name.empty()
                         ? enclosing->name
                         : enclosing->class_name + "::" + enclosing->name) +
                    ", which is not reachable from any hot-path root";
      out.push_back(Diagnostic{
          "ABSQ009", fi.path, line,
          "memory_order_relaxed " + where +
              " — cold code gets no benefit from relaxed ordering; use "
              "seq_cst or annotate the site with a rationale"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// lint_project / dump_dot
// ---------------------------------------------------------------------------

std::vector<Diagnostic> lint_project(const std::vector<ProjectFile>& files,
                                     const LayerManifest* manifest) {
  std::vector<Diagnostic> out;
  ProjectIndex index;
  for (const ProjectFile& f : files) {
    std::vector<Diagnostic> d = lint_file(f.path, f.content);
    out.insert(out.end(), std::make_move_iterator(d.begin()),
               std::make_move_iterator(d.end()));
    index.add_file(f.path, f.content);
  }
  const auto append = [&out](std::vector<Diagnostic> d) {
    out.insert(out.end(), std::make_move_iterator(d.begin()),
               std::make_move_iterator(d.end()));
  };
  if (manifest != nullptr) append(check_layering(index, *manifest));
  append(check_transitive_blocking(index));
  append(check_lock_order(index));
  append(check_atomic_audit(index));
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.code < b.code;
            });
  return out;
}

std::string dump_dot(const ProjectIndex& index) {
  std::ostringstream os;

  os << "digraph modules {\n";
  std::set<std::pair<std::string, std::string>> module_edges;
  for (const FileIndex& fi : index.files()) {
    const std::string from = module_of(fi.path);
    if (from.empty()) continue;
    for (const IncludeEdge& inc : fi.includes) {
      const std::string to = module_of(inc.target);
      if (to.empty() || to == from) continue;
      module_edges.emplace(from, to);
    }
  }
  for (const auto& [from, to] : module_edges) {
    os << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  os << "}\n";

  os << "digraph lock_order {\n";
  std::set<std::pair<std::string, std::string>> lock_edges;
  for (const FileIndex& fi : index.files()) {
    for (const FunctionDef& fn : fi.functions) {
      for (const LockSite& site : fn.locks) {
        for (const std::string& held : site.held) {
          if (held != site.mutex) lock_edges.emplace(held, site.mutex);
        }
      }
    }
  }
  for (const auto& [from, to] : lock_edges) {
    os << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  os << "}\n";

  os << "digraph calls {\n";
  std::set<std::pair<std::string, std::string>> call_edges;
  for (const FileIndex& fi : index.files()) {
    for (const FunctionDef& fn : fi.functions) {
      const std::string from =
          fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
      for (const CallSite& call : fn.calls) {
        for (const FunctionDef* callee : index.resolve(fn, call)) {
          const std::string to = callee->class_name.empty()
                                     ? callee->name
                                     : callee->class_name +
                                           "::" + callee->name;
          if (to != from) call_edges.emplace(from, to);
        }
      }
    }
  }
  for (const auto& [from, to] : call_edges) {
    os << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace absq::lint
