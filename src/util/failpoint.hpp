// Fail points — deterministic fault injection for the ABS runtime.
//
// A fail point is a named site in production code where a fault can be
// injected on demand: a thrown FailPointError (simulating a device/kernel
// crash), a silent message drop (mailbox storms), or a stall (a hung
// worker). Points are *disarmed by default* and cost one relaxed atomic
// load per call site when nothing is armed, so shipping them in the hot
// path does not perturb bit-identical baseline runs.
//
// Arming happens programmatically (tests) or through the ABSQ_FAILPOINTS
// environment variable, a comma-separated list of directives:
//
//     ABSQ_FAILPOINTS="device.iterate@2=once,mailbox.solution_push=every:8"
//
// Directive grammar:    name[@scope]=mode
//   once                fire on the first matching call, then never again
//   every:N             fire on every Nth matching call (N >= 1)
//   prob:P[:seed]       fire with probability P, from a seeded private RNG
//   stall:SECONDS       sleep SECONDS on every matching call (hung thread);
//                       sliced and aborted early by disarm()/cancel_stalls()
//   off                 disarm
//
// `@scope` restricts the point to call sites passing that scope value —
// the device wiring passes the device id, so `device.iterate@2` fails only
// device 2 of a multi-device run.
//
// Fail points shipped in this tree (the catalogue, see docs/robustness.md):
//   device.iterate        thrown at the top of Device::iterate_block
//                         (scope = device id); stall mode hangs the worker
//   thread_pool.task      thrown before each ThreadPool task runs
//   mailbox.target_push   drops the pushed target (counted in dropped())
//   mailbox.solution_push drops the pushed report (counted in dropped())
//   pool_io.write         thrown mid-serialization of pool/checkpoint
//                         files (simulates a crash during a write)
//   journal.append        thrown before a job-journal record is written —
//                         the submission must NOT be acknowledged
//   serve.accept          drops a freshly accepted connection (client
//                         sees a reset before any request)
//   serve.read            kills the connection before a recv (request
//                         lost mid-flight)
//   serve.write           drops the reply after the request took effect —
//                         the ambiguous outcome idempotent retries solve
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace absq::fail {

/// The injected failure. Deliberately NOT a CheckError: tests distinguish
/// injected faults from genuine precondition violations.
class FailPointError : public std::runtime_error {
 public:
  explicit FailPointError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class Mode : std::uint8_t {
  kOff,
  kOnce,
  kEveryNth,
  kProbability,
  kStall,
};

struct Spec {
  Mode mode = Mode::kOff;
  std::uint64_t every_n = 1;      ///< kEveryNth period
  double probability = 0.0;       ///< kProbability chance per call
  std::uint64_t seed = 1;         ///< kProbability RNG seed
  double stall_seconds = 0.0;     ///< kStall sleep per firing
  /// When set, the point fires only for call sites passing this scope.
  std::optional<std::uint64_t> scope;
};

/// Parses the mode part of a directive ("once", "every:8", "prob:0.1:7",
/// "stall:0.05", "off"). Throws CheckError on malformed text. The returned
/// Spec has no scope — the registry's directive parser fills that in.
[[nodiscard]] Spec parse_spec(const std::string& text);

/// Process-wide registry of named fail points. All members are
/// thread-safe; the disarmed fast path is a single relaxed load.
class Registry {
 public:
  /// The singleton. First access arms any directives found in the
  /// ABSQ_FAILPOINTS environment variable.
  static Registry& instance();

  void arm(const std::string& name, const Spec& spec);
  void disarm(const std::string& name);
  /// Disarms everything and aborts in-flight stalls — test teardown.
  void disarm_all();
  /// Arms from directive text ("name[@scope]=mode[,...]"); empty is a
  /// no-op. Throws CheckError on malformed directives.
  void arm_from_directives(const std::string& directives);

  /// Aborts in-flight stalls without disarming (future calls stall
  /// again). Called on orderly shutdown paths so an injected hang cannot
  /// outlive the component it was injected into.
  void cancel_stalls();

  [[nodiscard]] bool any_armed() const {
    return armed_points_.load(std::memory_order_acquire) > 0;
  }

  /// True when point `name` fires for `scope`. Stall specs sleep here
  /// (sliced; aborted by disarm/cancel_stalls) and return false — a stall
  /// is slowness, not an error.
  [[nodiscard]] bool fire(const char* name,
                          std::optional<std::uint64_t> scope = std::nullopt);

  /// Times the named point has fired (0 when never armed).
  [[nodiscard]] std::uint64_t hits(const std::string& name) const;

 private:
  Registry();

  struct Point {
    Spec spec;
    std::uint64_t calls = 0;  ///< matching-scope calls since arm()
    std::uint64_t fired = 0;
    Rng rng{1};               ///< kProbability stream
  };

  mutable std::mutex mutex_;
  std::map<std::string, Point> points_;
  std::atomic<int> armed_points_{0};
  /// Bumped by disarm/cancel_stalls; in-flight stalls re-check it.
  std::atomic<std::uint64_t> stall_epoch_{0};
};

/// Call-site helper: true when the named point fires. One relaxed load
/// when nothing is armed.
[[nodiscard]] inline bool triggered(
    const char* name, std::optional<std::uint64_t> scope = std::nullopt) {
  Registry& registry = Registry::instance();
  return registry.any_armed() && registry.fire(name, scope);
}

/// Call-site helper: throws FailPointError when the named point fires.
inline void maybe_fail(const char* name,
                       std::optional<std::uint64_t> scope = std::nullopt) {
  if (triggered(name, scope)) {
    std::string what = "injected fault at fail point '";
    what += name;
    what += '\'';
    if (scope.has_value()) {
      what += " (scope ";
      what += std::to_string(*scope);
      what += ')';
    }
    throw FailPointError(what);
  }
}

}  // namespace absq::fail
