#include "util/thread_pool.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace absq {

ThreadPool::ThreadPool(std::size_t threads) {
  ABSQ_CHECK(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    ABSQ_CHECK(!stopping_, "submit() after shutdown began");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      fail::maybe_fail("thread_pool.task");
      task();
    } catch (...) {
      // First failure wins; the worker itself survives and returns to the
      // queue — fault isolation, not fail-fast.
      std::lock_guard lock(mutex_);
      if (failure_ == nullptr) failure_ = std::current_exception();
      failed_.store(true, std::memory_order_release);
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace absq
