// absq_lint — the project-invariant checker behind `tools/absq_lint` and
// tier 4 of scripts/analyze.sh.
//
// Generic analyzers (clang-tidy, sanitizers) cannot know this project's
// rules: which files are allowed to use relaxed atomics, which functions
// are hot paths that must never block, or that every error type has to
// plug into the CheckError hierarchy so the serving layer can map it to a
// wire code. Those invariants live here, as a small AST-lite scanner:
// comments and literals are stripped, then each rule runs over the
// remaining tokens. Findings carry stable diagnostic codes (ABSQ001…)
// that the self-test (tests/test_lint.cpp) pins.
//
// Suppressions, both with a mandatory trailing rationale:
//   // absq-lint: allow(<rule-name>) <why>        — this line + the next
//   // absq-lint: allow-file(<rule-name>) <why>   — the whole file
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace absq::lint {

/// One finding. `code` is stable across releases; tooling may key off it.
struct Diagnostic {
  std::string code;     ///< e.g. "ABSQ002"
  std::string file;     ///< repo-relative path, forward slashes
  std::size_t line = 0; ///< 1-based
  std::string message;
};

/// Static description of a rule, for `absq_lint --list-rules` and docs.
struct RuleInfo {
  const char* code;    ///< "ABSQ001"
  const char* name;    ///< suppression key, e.g. "naked-new"
  const char* summary; ///< one line, what the rule enforces
};

/// All registered rules, in code order.
const std::vector<RuleInfo>& rules();

/// Parsed `absq-lint: allow(rule)` / `allow-file(rule)` annotations of one
/// file. The graph rules (ABSQ006–ABSQ009) honour suppressions at any call
/// frame, so the per-file structure is part of the public index.
struct Suppressions {
  // rule name -> lines on which it is allowed (the annotated line and the
  // one after it, so a standalone comment line covers the code below).
  std::vector<std::pair<std::string, std::size_t>> line_allows;
  std::vector<std::string> file_allows;

  [[nodiscard]] bool allowed(std::string_view rule, std::size_t line) const {
    for (const std::string& r : file_allows) {
      if (r == rule) return true;
    }
    return std::any_of(line_allows.begin(), line_allows.end(),
                       [&](const auto& a) {
                         return a.first == rule &&
                                (a.second == line || a.second + 1 == line);
                       });
  }
};

/// Parses suppression annotations from raw (un-stripped) source — they
/// live in comments by design.
Suppressions collect_suppressions(std::string_view src);

/// One ABSQ003/ABSQ007 hot-path root: functions whose per-iteration call
/// chain must never block.
struct HotPathRoot {
  std::string_view file;        ///< exact repo-relative path
  std::string_view class_name;  ///< qualifier before ::
  std::vector<std::string_view> functions;
};

/// The hot-path root set shared by ABSQ003 (direct, token-level) and
/// ABSQ007/ABSQ009 (transitive, through the call graph).
const std::vector<HotPathRoot>& hot_path_roots();

/// Calls that block (or do I/O) and may not appear on a hot path — the
/// token list shared by ABSQ003 and ABSQ007.
const std::vector<std::string_view>& blocking_tokens();

/// Lint one file. `path` must be repo-relative with forward slashes —
/// several rules key off directory prefixes (e.g. src/obs/).
std::vector<Diagnostic> lint_file(std::string_view path,
                                  std::string_view content);

/// Blank out comments and string/char literals (newlines kept so line
/// numbers survive). Exposed for the self-test.
std::string strip_comments_and_strings(std::string_view src);

/// "file:line: [CODE] message" — the one format printed by the CLI.
std::string format_diagnostic(const Diagnostic& d);

/// Per-rule finding counts, in rule-code order, for the summary line.
std::vector<std::pair<std::string, std::size_t>> count_by_rule(
    const std::vector<Diagnostic>& diagnostics);

/// The full findings set as a SARIF 2.1.0 document (one run, one driver,
/// every registered rule listed, one result per diagnostic). Plain string
/// building — lint stays in util/, which depends on nothing, so it cannot
/// use serve::Json; the self-test parses the output back with it instead.
std::string to_sarif(const std::vector<Diagnostic>& diagnostics);

}  // namespace absq::lint
