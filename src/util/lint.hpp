// absq_lint — the project-invariant checker behind `tools/absq_lint` and
// tier 4 of scripts/analyze.sh.
//
// Generic analyzers (clang-tidy, sanitizers) cannot know this project's
// rules: which files are allowed to use relaxed atomics, which functions
// are hot paths that must never block, or that every error type has to
// plug into the CheckError hierarchy so the serving layer can map it to a
// wire code. Those invariants live here, as a small AST-lite scanner:
// comments and literals are stripped, then each rule runs over the
// remaining tokens. Findings carry stable diagnostic codes (ABSQ001…)
// that the self-test (tests/test_lint.cpp) pins.
//
// Suppressions, both with a mandatory trailing rationale:
//   // absq-lint: allow(<rule-name>) <why>        — this line + the next
//   // absq-lint: allow-file(<rule-name>) <why>   — the whole file
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace absq::lint {

/// One finding. `code` is stable across releases; tooling may key off it.
struct Diagnostic {
  std::string code;     ///< e.g. "ABSQ002"
  std::string file;     ///< repo-relative path, forward slashes
  std::size_t line = 0; ///< 1-based
  std::string message;
};

/// Static description of a rule, for `absq_lint --list-rules` and docs.
struct RuleInfo {
  const char* code;    ///< "ABSQ001"
  const char* name;    ///< suppression key, e.g. "naked-new"
  const char* summary; ///< one line, what the rule enforces
};

/// All registered rules, in code order.
const std::vector<RuleInfo>& rules();

/// Lint one file. `path` must be repo-relative with forward slashes —
/// several rules key off directory prefixes (e.g. src/obs/).
std::vector<Diagnostic> lint_file(std::string_view path,
                                  std::string_view content);

/// Blank out comments and string/char literals (newlines kept so line
/// numbers survive). Exposed for the self-test.
std::string strip_comments_and_strings(std::string_view src);

/// "file:line: [CODE] message" — the one format printed by the CLI.
std::string format_diagnostic(const Diagnostic& d);

}  // namespace absq::lint
