#!/usr/bin/env bash
# Formatting gate.
#
#   scripts/format.sh            rewrite files in place
#   scripts/format.sh --check    verify only (exit 1 on any violation)
#
# Two layers:
#   1. clang-format with the repo's .clang-format — when the tool exists.
#      Toolchains without clang-format (the minimal CI/container image)
#      skip this layer with a notice rather than failing, so the gate
#      stays runnable everywhere; the CI format job uses an image that
#      has it.
#   2. Built-in hygiene checks that need no external tool and always run:
#      no tabs in C++ sources, no trailing whitespace, no CRLF endings,
#      every file ends with exactly one newline. In fix mode these are
#      repaired in place.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="fix"
if [[ "${1:-}" == "--check" ]]; then
  MODE="check"
elif [[ -n "${1:-}" ]]; then
  echo "usage: scripts/format.sh [--check]" >&2
  exit 2
fi

mapfile -t FILES < <(git ls-files '*.cpp' '*.hpp')

STATUS=0

# --- layer 1: clang-format ---------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  if [[ "$MODE" == "check" ]]; then
    if ! clang-format --dry-run -Werror "${FILES[@]}"; then
      echo "format.sh: clang-format violations (run scripts/format.sh)" >&2
      STATUS=1
    fi
  else
    clang-format -i "${FILES[@]}"
  fi
else
  echo "format.sh: clang-format not found — skipping layer 1 (hygiene checks still run)"
fi

# --- layer 2: built-in hygiene ----------------------------------------------
HYGIENE=0
python3 - "$MODE" "${FILES[@]}" <<'PY' || HYGIENE=$?
import sys

mode, files = sys.argv[1], sys.argv[2:]
failed = False

for path in files:
    with open(path, "rb") as f:
        data = f.read()
    problems = []
    if b"\t" in data:
        problems.append("tab character")
    if b"\r" in data:
        problems.append("CR line ending")
    if any(line != line.rstrip() for line in data.decode("utf-8").split("\n")):
        problems.append("trailing whitespace")
    if data and not data.endswith(b"\n"):
        problems.append("missing final newline")
    if data.endswith(b"\n\n"):
        problems.append("multiple final newlines")
    if not problems:
        continue
    if mode == "check":
        print(f"{path}: {', '.join(problems)}", file=sys.stderr)
        failed = True
    else:
        text = data.decode("utf-8").replace("\r\n", "\n").replace("\r", "\n")
        lines = [line.rstrip().replace("\t", "    ") for line in text.split("\n")]
        while lines and lines[-1] == "":
            lines.pop()
        with open(path, "wb") as f:
            f.write(("\n".join(lines) + "\n").encode("utf-8"))
        print(f"{path}: fixed {', '.join(problems)}")

if failed:
    print("format.sh: hygiene violations (run scripts/format.sh)", file=sys.stderr)
    sys.exit(1)
PY
if [[ $HYGIENE -ne 0 ]]; then
  STATUS=1
fi

if [[ "$MODE" == "check" && $STATUS -eq 0 ]]; then
  echo "format.sh: ${#FILES[@]} files clean"
fi
exit $STATUS
