#!/usr/bin/env bash
# The repo's one-command verification gate:
#
#   1. tier-1: configure + build everything, run the full ctest suite;
#   2. race check: rebuild the concurrency-sensitive tests under
#      ThreadSanitizer (cmake -DABSQ_SANITIZE=thread) and run them —
#      the observability layer's lock-free counters and ring tracer,
#      the sharded mailboxes under device workers, and the threaded
#      solver itself must all be TSan-clean.
#
#   scripts/check.sh [jobs]      (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 1: build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== tier 2: ThreadSanitizer =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DABSQ_SANITIZE=thread >/dev/null
TSAN_TARGETS=(test_metrics test_trace test_mailbox test_device test_solver)
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"
for test in "${TSAN_TARGETS[@]}"; do
  echo "-- tsan: $test"
  ./build-tsan/tests/"$test"
done

echo
echo "check.sh: all gates passed"
