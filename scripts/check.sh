#!/usr/bin/env bash
# The repo's one-command verification gate:
#
#   1. tier-1: configure + build everything, run the full ctest suite
#      (includes the tools_smoke, crash_smoke, serve_smoke and chaos_smoke
#      end-to-end scripts);
#   2. race check: rebuild the concurrency-sensitive tests under
#      ThreadSanitizer (cmake -DABSQ_SANITIZE=thread) and run them —
#      the observability layer's lock-free counters and ring tracer,
#      the sharded mailboxes under device workers, the threaded solver,
#      the fault-injection/watchdog paths, and the serving layer (job
#      scheduler + TCP server) must all be TSan-clean;
#   3. memory check: the same targets under Address+UndefinedBehavior
#      Sanitizer (cmake -DABSQ_SANITIZE=address) — quarantine, restart,
#      and checkpoint paths juggle exception_ptrs and device teardown,
#      exactly where lifetime bugs would hide.
#
#   scripts/check.sh [jobs]      (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

SANITIZE_TARGETS=(test_metrics test_trace test_mailbox test_device
                  test_solver test_portfolio test_thread_pool
                  test_failpoint test_fault_tolerance test_protocol
                  test_journal test_job_manager test_job_server)
# The chaos harness (SIGKILL + --recover) also runs under both sanitizers,
# against sanitized builds of the tools it drives.
CHAOS_TOOLS=(absq_gen absq_serve absq_client)

echo "== tier 1: build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== tier 2: ThreadSanitizer =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DABSQ_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
      --target "${SANITIZE_TARGETS[@]}" "${CHAOS_TOOLS[@]}"
for test in "${SANITIZE_TARGETS[@]}"; do
  echo "-- tsan: $test"
  ./build-tsan/tests/"$test"
done
echo "-- tsan: chaos_smoke"
./scripts/chaos_smoke.sh build-tsan

echo
echo "== tier 3: Address+UB Sanitizer =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DABSQ_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
      --target "${SANITIZE_TARGETS[@]}" "${CHAOS_TOOLS[@]}"
for test in "${SANITIZE_TARGETS[@]}"; do
  echo "-- asan: $test"
  ./build-asan/tests/"$test"
done
echo "-- asan: chaos_smoke"
./scripts/chaos_smoke.sh build-asan

echo
echo "check.sh: all gates passed"
