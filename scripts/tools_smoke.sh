#!/usr/bin/env bash
# End-to-end smoke test of the CLI tools, run by CTest (tools_smoke).
# Exercises: generate → inspect → solve → save solution → verify, across
# all four instance formats, plus failure-path exit codes.
set -euo pipefail

BIN="${1:?usage: tools_smoke.sh <build-dir>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "tools_smoke: FAIL — $1" >&2; exit 1; }

# --- native qubo format ----------------------------------------------------
"$BIN/tools/absq_gen" random --bits 96 --seed 5 --out "$WORK/r.qubo"
"$BIN/tools/absq_info" "$WORK/r.qubo" | grep -q "bits:          96" \
  || fail "absq_info did not report the instance size"
"$BIN/tools/absq_solve" "$WORK/r.qubo" --seconds 0.5 --out "$WORK/r.sol" \
  | grep -q "best energy" || fail "absq_solve (qubo) produced no result"
"$BIN/tools/absq_info" "$WORK/r.qubo" --verify "$WORK/r.sol" \
  | grep -q "VERIFIED" || fail "solution verification failed"

# Tampered solution must be detected (exit 2).
sed 's/^solution \(.*\) -\?[0-9]*$/solution \1 123456/' "$WORK/r.sol" \
  > "$WORK/bad.sol"
if "$BIN/tools/absq_info" "$WORK/r.qubo" --verify "$WORK/bad.sol" \
    > /dev/null 2>&1; then
  fail "tampered solution passed verification"
fi

# --- gset / Max-Cut ---------------------------------------------------------
"$BIN/tools/absq_gen" maxcut --vertices 60 --edges 300 --weights pm1 \
  --seed 3 --out "$WORK/g.gset"
"$BIN/tools/absq_solve" "$WORK/g.gset" --format gset --seconds 0.5 \
  | grep -q "cut weight" || fail "absq_solve (gset) printed no cut"

# --- TSP --------------------------------------------------------------------
"$BIN/tools/absq_gen" tsp --cities 8 --seed 2 --out "$WORK/t.qubo"
"$BIN/tools/absq_solve" "$WORK/t.qubo" --seconds 0.5 \
  | grep -q "best energy" || fail "absq_solve (tsp qubo) failed"

# --- DIMACS / 3-SAT ----------------------------------------------------------
"$BIN/tools/absq_gen" sat --vars 12 --clauses 40 --seed 9 --out "$WORK/f.cnf"
"$BIN/tools/absq_solve" "$WORK/f.cnf" --format dimacs --seconds 0.5 \
  | grep -q "violated clauses" || fail "absq_solve (dimacs) printed no count"

# --- absq_lint ---------------------------------------------------------------
# Outputs are captured to files first — grep -q on a live pipe kills the
# tool with SIGPIPE, which pipefail then reports as a failure.
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
# Clean tree: exit 0 with the rule total in the summary.
"$BIN/tools/absq_lint" --root "$REPO_ROOT" > "$WORK/lint.txt"
grep -q "files clean (9 rules)" "$WORK/lint.txt" \
  || fail "absq_lint clean run did not print the 9-rule summary"
# SARIF output is a 2.1.0 document.
"$BIN/tools/absq_lint" --root "$REPO_ROOT" --format=sarif \
  > "$WORK/lint.sarif"
grep -q '"version":"2.1.0"' "$WORK/lint.sarif" \
  || fail "absq_lint --format=sarif did not emit a SARIF 2.1.0 document"
# Findings carry per-rule counts in the (stderr) summary; --fail-on=never
# keeps the exit at 0.
LINT_FIXTURE="$WORK/lint_fixture"
mkdir -p "$LINT_FIXTURE/src/qubo"
printf 'int* p = new int;\nint* q = new int;\n' \
  > "$LINT_FIXTURE/src/qubo/bad.cpp"
"$BIN/tools/absq_lint" --root "$LINT_FIXTURE" --fail-on=never src \
  > "$WORK/lint_fixture.txt" 2>&1
grep -q "ABSQ001:2" "$WORK/lint_fixture.txt" \
  || fail "absq_lint summary lacks per-rule counts"
if "$BIN/tools/absq_lint" --root "$LINT_FIXTURE" src > /dev/null 2>&1; then
  fail "absq_lint did not fail on findings with the default --fail-on=error"
fi
# Unknown flags and bad enum values are usage errors: exit 2.
set +e
"$BIN/tools/absq_lint" --bogus > /dev/null 2>&1
code=$?
set -e
[[ "$code" == "2" ]] || fail "absq_lint --bogus exited $code, expected 2"
set +e
"$BIN/tools/absq_lint" --root "$REPO_ROOT" --format=yaml > /dev/null 2>&1
code=$?
set -e
[[ "$code" == "2" ]] || fail "absq_lint --format=yaml exited $code, expected 2"
# The graph dump emits all three digraphs.
"$BIN/tools/absq_lint" --root "$REPO_ROOT" --graph-dump=dot \
  > "$WORK/lint.dot"
[[ "$(grep -c '^digraph' "$WORK/lint.dot")" == "3" ]] \
  || fail "absq_lint --graph-dump=dot did not emit 3 digraphs"

# --- failure paths -----------------------------------------------------------
if "$BIN/tools/absq_solve" /nonexistent.qubo --seconds 0.1 \
    > /dev/null 2>&1; then
  fail "missing file did not fail"
fi
if "$BIN/tools/absq_gen" bogus --out "$WORK/x" > /dev/null 2>&1; then
  fail "unknown family did not fail"
fi
# Unreachable target → exit 2.
set +e
"$BIN/tools/absq_solve" "$WORK/r.qubo" --seconds 0.2 \
  --target -99999999999999 > /dev/null 2>&1
code=$?
set -e
[[ "$code" == "2" ]] || fail "unreachable target exited $code, expected 2"

echo "tools_smoke: OK"
