#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, run the full test suite
# and every bench harness, leaving test_output.txt and bench_output.txt in
# the repository root (the artifacts EXPERIMENTS.md is written against).
#
#   ./scripts/reproduce.sh            # everything, default bench budgets
#   ./scripts/reproduce.sh --quick    # smaller bench budgets (~2 min)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

run_bench() {
  local bench="$1"
  shift
  echo "===== $(basename "$bench") ====="
  "$bench" "$@"
  echo
}

{
  if [[ "$QUICK" == "1" ]]; then
    run_bench build/bench/bench_search_efficiency --steps 500
    run_bench build/bench/bench_table1a_maxcut --trials 1 --cap 5 --max-bits 2000
    run_bench build/bench/bench_table1b_tsp --trials 1 --cap 10 --max-cities 29
    run_bench build/bench/bench_table1c_random --trials 1 --cap 10 --max-bits 4096
    run_bench build/bench/bench_table2_throughput --max-bits 4096 --flips 20000
    run_bench build/bench/bench_fig8_scaling --seconds 0.5
    run_bench build/bench/bench_table3_comparison
    run_bench build/bench/bench_ablation_window --flips 50000
    run_bench build/bench/bench_ablation_ga --flips 100000
    run_bench build/bench/bench_ablation_adaptive --flips 100000
    run_bench build/bench/bench_kernels --benchmark_min_time=0.05s
  else
    for bench in build/bench/*; do
      run_bench "$bench"
    done
  fi
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
