#!/usr/bin/env bash
# Perf gate over the BENCH_*.json trajectories (BenchReport JSONL).
#
#   usage: perfgate.sh <current.json> [<baseline.json>] [--strict]
#
# Four checks (each section activates on the line types present in the
# files, so one script gates kernel-throughput, TTS, and serving files):
#
#   1. Sparse-kernel ratio gate (always on, always hard): within
#      <current.json>, every G-set instance that has both a dense-simd and
#      a sparse row AND whose rows are marked auto_form=sparse (the planner
#      would pick the CSR kernel) must show sparse flips/s ≥ 2× dense-simd
#      flips/s. Both rows come from the same run on the same host, so the
#      ratio is host-independent — this is the kernel-rework acceptance
#      criterion, and it tracks the planner policy: instances above the
#      density crossover (e.g. G1 at 6%) are reported but not gated.
#
#   2. Snapshot regression diff (when <baseline.json> is given): any row
#      present in both files whose search_rate dropped by more than 10%
#      is flagged. Absolute rates are host-dependent, so this is warn-only
#      by default; pass --strict (same-host comparisons, e.g. a perf lab
#      box) to turn flags into failures.
#
#   3. TTS trajectory diff (when both files carry `tts` lines, e.g.
#      BENCH_tts.json): per "<bench>/<row>" key, a row whose reached
#      count dropped OR whose mean_seconds grew by more than 50% is
#      flagged. TTS is noisier than throughput (it measures a stochastic
#      search, not a kernel), hence the wider threshold; warn-only unless
#      --strict.
#
#   4. Serve latency diff (when both files carry `serve` lines, e.g.
#      BENCH_serve.json): per row, admission p99_ms growing by more than
#      50% is flagged. Warn-only unless --strict.
#
# Rows are keyed "<instance>/<kernel-form>" (e.g. "gset-G22/sparse"); the
# rate is the `search_rate` field of the result line — evaluated solutions
# per second, the paper's metric.
set -euo pipefail

usage() {
  sed -n '2,37p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

current=""
baseline=""
strict=0
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    --help|-h) usage ;;
    *)
      if [[ -z "$current" ]]; then current="$arg"
      elif [[ -z "$baseline" ]]; then baseline="$arg"
      else usage; fi
      ;;
  esac
done
[[ -n "$current" ]] || usage
[[ -f "$current" ]] || { echo "perfgate: no such file: $current" >&2; exit 2; }

# "<instance> <search_rate> <auto_form>" triples from a BenchReport JSONL
# file: each meta line names the row (and carries the planner's auto_form
# pick, "-" when absent), the following result line carries the rate.
extract_rates() {
  awk '
    /"type":"meta"/ {
      inst = ""
      autoform = "-"
      if (match($0, /"instance":"[^"]*"/)) {
        inst = substr($0, RSTART + 12, RLENGTH - 13)
      }
      if (match($0, /"auto_form":"[^"]*"/)) {
        autoform = substr($0, RSTART + 13, RLENGTH - 14)
      }
    }
    /"type":"result"/ {
      if (inst != "" && match($0, /"search_rate":[0-9.eE+-]+/)) {
        print inst, substr($0, RSTART + 14, RLENGTH - 14), autoform
        inst = ""
      }
    }
  ' "$1"
}

fail=0

# --- 1. sparse ≥ 2× dense-simd on every G-set instance ---------------------
ratio_report=$(extract_rates "$current" | awk '
  $1 ~ /^gset-[^\/]*\/dense-simd$/ { sub(/\/dense-simd$/, "", $1); dense[$1] = $2 }
  $1 ~ /^gset-[^\/]*\/sparse$/ {
    sub(/\/sparse$/, "", $1); sparse[$1] = $2; form[$1] = $3
  }
  END {
    pairs = 0
    for (inst in sparse) {
      if (!(inst in dense) || dense[inst] <= 0) continue
      ratio = sparse[inst] / dense[inst]
      if (form[inst] != "sparse") {
        printf "skip %s sparse/dense = %.2fx (planner picks %s here; not gated)\n",
               inst, ratio, form[inst]
        continue
      }
      ++pairs
      status = (ratio >= 2.0) ? "ok" : "FAIL"
      printf "%s %s sparse/dense = %.2fx (need >= 2x)\n", status, inst, ratio
    }
    if (pairs == 0) print "none no gated dense-simd/sparse G-set pairs in file"
  }
')
echo "== sparse-kernel ratio gate ($current) =="
echo "$ratio_report"
if echo "$ratio_report" | grep -q '^FAIL'; then
  echo "perfgate: sparse kernel is below the 2x acceptance ratio" >&2
  fail=1
fi

# --- 2. >10% search_rate regression vs the committed snapshot --------------
if [[ -n "$baseline" ]]; then
  [[ -f "$baseline" ]] || { echo "perfgate: no such file: $baseline" >&2; exit 2; }
  echo "== snapshot diff ($baseline -> $current, threshold -10%) =="
  diff_report=$( (extract_rates "$baseline" | sed 's/^/B /';
                  extract_rates "$current"  | sed 's/^/C /') | awk '
    $1 == "B" { base[$2] = $3 }
    $1 == "C" { cur[$2] = $3 }
    END {
      flagged = 0; compared = 0
      for (inst in cur) {
        if (!(inst in base) || base[inst] <= 0) continue
        ++compared
        change = (cur[inst] - base[inst]) / base[inst] * 100.0
        if (change < -10.0) {
          ++flagged
          printf "REGRESSION %s %+.1f%% (%.3e -> %.3e sols/s)\n",
                 inst, change, base[inst], cur[inst]
        }
      }
      printf "compared %d rows, %d regressed more than 10%%\n", compared, flagged
    }
  ')
  echo "$diff_report"
  if echo "$diff_report" | grep -q '^REGRESSION'; then
    if [[ "$strict" -eq 1 ]]; then
      echo "perfgate: regressions above threshold (--strict)" >&2
      fail=1
    else
      echo "perfgate: regressions flagged (warn-only; cross-host numbers" \
           "drift — use --strict on a pinned host)"
    fi
  fi
fi

# "<bench>/<row> <reached> <mean_seconds>" triples from `tts` lines.
extract_tts() {
  awk '
    /"type":"tts"/ {
      bench = ""; row = ""; reached = ""; mean = ""
      if (match($0, /"bench":"[^"]*"/)) {
        bench = substr($0, RSTART + 9, RLENGTH - 10)
      }
      if (match($0, /"row":"[^"]*"/)) {
        row = substr($0, RSTART + 7, RLENGTH - 8)
      }
      if (match($0, /"reached":[0-9]+/)) {
        reached = substr($0, RSTART + 10, RLENGTH - 10)
      }
      if (match($0, /"mean_seconds":[0-9.eE+-]+/)) {
        mean = substr($0, RSTART + 15, RLENGTH - 15)
      }
      if (bench != "" && row != "" && reached != "" && mean != "") {
        print bench "/" row, reached, mean
      }
    }
  ' "$1"
}

# --- 3. TTS trajectory diff (reached count + mean_seconds) -----------------
if [[ -n "$baseline" ]] && grep -q '"type":"tts"' "$current" 2>/dev/null \
    && grep -q '"type":"tts"' "$baseline" 2>/dev/null; then
  echo "== tts diff ($baseline -> $current, threshold +50% / fewer reached) =="
  tts_report=$( (extract_tts "$baseline" | sed 's/^/B /';
                 extract_tts "$current"  | sed 's/^/C /') | awk '
    $1 == "B" { base_reached[$2] = $3; base_mean[$2] = $4 }
    $1 == "C" { cur_reached[$2] = $3; cur_mean[$2] = $4 }
    END {
      flagged = 0; compared = 0
      for (row in cur_mean) {
        if (!(row in base_mean)) continue
        ++compared
        if (cur_reached[row] < base_reached[row]) {
          ++flagged
          printf "REGRESSION %s reached %d -> %d trials\n",
                 row, base_reached[row], cur_reached[row]
          continue
        }
        # mean_seconds is only comparable when both sides reached.
        if (base_reached[row] == 0 || base_mean[row] <= 0) continue
        change = (cur_mean[row] - base_mean[row]) / base_mean[row] * 100.0
        if (change > 50.0) {
          ++flagged
          printf "REGRESSION %s tts %+.1f%% (%.3fs -> %.3fs)\n",
                 row, change, base_mean[row], cur_mean[row]
        }
      }
      printf "compared %d rows, %d regressed\n", compared, flagged
    }
  ')
  echo "$tts_report"
  if echo "$tts_report" | grep -q '^REGRESSION'; then
    if [[ "$strict" -eq 1 ]]; then
      echo "perfgate: tts regressions above threshold (--strict)" >&2
      fail=1
    else
      echo "perfgate: tts regressions flagged (warn-only; stochastic" \
           "search on a shared host — use --strict on a pinned box)"
    fi
  fi
fi

# --- 4. serve admission-latency diff (p99_ms) ------------------------------
if [[ -n "$baseline" ]] && grep -q '"type":"serve"' "$current" 2>/dev/null \
    && grep -q '"type":"serve"' "$baseline" 2>/dev/null; then
  echo "== serve diff ($baseline -> $current, threshold p99 +50%) =="
  extract_serve() {
    awk '
      /"type":"serve"/ {
        row = ""; p99 = ""
        if (match($0, /"row":"[^"]*"/)) {
          row = substr($0, RSTART + 7, RLENGTH - 8)
        }
        if (match($0, /"p99_ms":[0-9.eE+-]+/)) {
          p99 = substr($0, RSTART + 9, RLENGTH - 9)
        }
        if (row != "" && p99 != "") print row, p99
      }
    ' "$1"
  }
  serve_report=$( (extract_serve "$baseline" | sed 's/^/B /';
                   extract_serve "$current"  | sed 's/^/C /') | awk '
    $1 == "B" { base[$2] = $3 }
    $1 == "C" { cur[$2] = $3 }
    END {
      flagged = 0; compared = 0
      for (row in cur) {
        if (!(row in base) || base[row] <= 0) continue
        ++compared
        change = (cur[row] - base[row]) / base[row] * 100.0
        if (change > 50.0) {
          ++flagged
          printf "REGRESSION %s p99 %+.1f%% (%.3fms -> %.3fms)\n",
                 row, change, base[row], cur[row]
        }
      }
      printf "compared %d rows, %d regressed\n", compared, flagged
    }
  ')
  echo "$serve_report"
  if echo "$serve_report" | grep -q '^REGRESSION'; then
    if [[ "$strict" -eq 1 ]]; then
      echo "perfgate: serve latency regressions above threshold (--strict)" >&2
      fail=1
    else
      echo "perfgate: serve latency regressions flagged (warn-only;" \
           "use --strict on a pinned host)"
    fi
  fi
fi

# --- 5. diverse-config trajectory diff (always warn-only) ------------------
# Config-tagged tts rows (bench_islands, diverse bench_table1b runs) track
# the Diverse-ABS acceptance criterion: on the stalled rows the diverse
# configuration's reached count must never drop and its best-achieved
# energy must never worsen vs the committed snapshot. Stochastic search on
# unpinned hosts, so this section never hard-fails — it exists to make a
# diverse-search regression loud in CI logs.
if [[ -n "$baseline" ]] && grep -q '"type":"tts".*"config"' "$current" 2>/dev/null \
    && grep -q '"type":"tts".*"config"' "$baseline" 2>/dev/null; then
  echo "== diverse tts diff ($baseline -> $current, warn-only) =="
  extract_diverse_tts() {
    awk '
      /"type":"tts"/ && /"config"/ {
        bench = ""; row = ""; reached = ""; best = ""
        if (match($0, /"bench":"[^"]*"/)) {
          bench = substr($0, RSTART + 9, RLENGTH - 10)
        }
        if (match($0, /"row":"[^"]*"/)) {
          row = substr($0, RSTART + 7, RLENGTH - 8)
        }
        if (match($0, /"reached":[0-9]+/)) {
          reached = substr($0, RSTART + 10, RLENGTH - 10)
        }
        if (match($0, /"best_achieved":-?[0-9]+/)) {
          best = substr($0, RSTART + 16, RLENGTH - 16)
        }
        if (bench != "" && row != "" && reached != "" && best != "") {
          print bench "/" row, reached, best
        }
      }
    ' "$1"
  }
  diverse_report=$( (extract_diverse_tts "$baseline" | sed 's/^/B /';
                     extract_diverse_tts "$current"  | sed 's/^/C /') | awk '
    $1 == "B" { base_reached[$2] = $3; base_best[$2] = $4 }
    $1 == "C" { cur_reached[$2] = $3; cur_best[$2] = $4 }
    END {
      flagged = 0; compared = 0
      for (row in cur_reached) {
        if (!(row in base_reached)) continue
        ++compared
        if (cur_reached[row] + 0 < base_reached[row] + 0) {
          ++flagged
          printf "WARN %s reached %d -> %d trials\n",
                 row, base_reached[row], cur_reached[row]
        }
        # Lower energy is better: a higher best_achieved is a regression.
        if (cur_best[row] + 0 > base_best[row] + 0) {
          ++flagged
          printf "WARN %s best_achieved %d -> %d (worsened)\n",
                 row, base_best[row], cur_best[row]
        }
      }
      printf "compared %d diverse rows, %d flagged\n", compared, flagged
    }
  ')
  echo "$diverse_report"
  if echo "$diverse_report" | grep -q '^WARN'; then
    echo "perfgate: diverse-config trajectory flagged (warn-only by design)"
  fi
fi

exit "$fail"
