#!/usr/bin/env bash
# Crash/recovery smoke test, run by CTest (crash_smoke).
#
# SIGKILLs a checkpointing absq_solve mid-run — the one failure no signal
# handler can soften — then asserts that the atomic checkpoint survived
# intact and that --resume continues the run to an equal-or-better energy.
set -euo pipefail

BIN="${1:?usage: crash_smoke.sh <build-dir>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "crash_smoke: FAIL — $1" >&2; exit 1; }

"$BIN/tools/absq_gen" random --bits 120 --seed 11 --out "$WORK/c.qubo"

# Start a long checkpointing solve and kill it -9 once a checkpoint lands.
"$BIN/tools/absq_solve" "$WORK/c.qubo" --seconds 60 \
  --checkpoint "$WORK/run.ck" --checkpoint-interval 0.2 \
  > "$WORK/victim.out" 2>&1 &
victim=$!
for _ in $(seq 1 100); do
  [[ -f "$WORK/run.ck" ]] && break
  sleep 0.1
done
[[ -f "$WORK/run.ck" ]] || { kill "$victim" 2>/dev/null; \
  fail "no checkpoint appeared within 10 s"; }
sleep 0.3   # let at least one more write race the kill
kill -9 "$victim"
wait "$victim" 2>/dev/null || true

# The snapshot must parse (atomic rename ⇒ never a torn file) and carry
# the incumbent energy on its first pool line.
head -1 "$WORK/run.ck" | grep -q "absq-checkpoint 1" \
  || fail "checkpoint header missing after SIGKILL"
grep -q "^end$" "$WORK/run.ck" || fail "checkpoint truncated after SIGKILL"
ck_best="$(awk '/^pool /{getline; print $1; exit}' "$WORK/run.ck")"
[[ -n "$ck_best" && "$ck_best" != "?" ]] \
  || fail "checkpoint carries no evaluated incumbent"

# Resume and require an equal-or-better final energy.
"$BIN/tools/absq_solve" "$WORK/c.qubo" --seconds 1 \
  --resume "$WORK/run.ck" > "$WORK/resumed.out" 2>&1 \
  || fail "absq_solve --resume exited non-zero"
grep -q "resumed from" "$WORK/resumed.out" \
  || fail "--resume did not report the checkpoint"
new_best="$(awk '/^best energy:/{print $3; exit}' "$WORK/resumed.out")"
[[ -n "$new_best" ]] || fail "resumed run printed no best energy"
if (( new_best > ck_best )); then
  fail "resumed energy $new_best is worse than checkpointed $ck_best"
fi

echo "crash_smoke: OK (checkpoint $ck_best → resumed $new_best)"
