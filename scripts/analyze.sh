#!/usr/bin/env bash
# Tier 4 of the verification gate: machine-enforced static analysis.
# (Tiers 1–3 — ctest, TSan, ASan+UBSan — live in scripts/check.sh.)
#
#   scripts/analyze.sh [jobs]      (default: nproc)
#
# Five stages, all of which must pass from a clean checkout:
#
#   A. Werror build — the full tree under the strict warning set
#      (-Wall/-Wextra/-Wpedantic/-Wshadow/-Wconversion/-Wsign-conversion
#      plus the deep GCC set: -Wuseless-cast, -Wduplicated-cond,
#      -Wlogical-op, -Wnull-dereference, …) with ABSQUBO_WERROR=ON.
#   B. clang-tidy — the curated .clang-tidy profile over the compilation
#      database, zero findings. Skipped with a notice when clang-tidy is
#      not installed (the minimal container); the CI analyze job provides
#      it. The profile and baseline are maintained regardless.
#   C. absq_lint — the project-invariant checker (naked new/delete,
#      relaxed-atomics policy, hot-path blocking calls, error hierarchy,
#      include hygiene, plus the graph rules: module layering against
#      lint_layers.toml, transitive blocking calls, lock-order cycles,
#      atomic-ordering audit), zero findings. Runs twice: human-readable
#      text, then SARIF into build-analyze/absq_lint.sarif (CI uploads it
#      for code-scanning annotations). Budget: the lint pass must finish
#      in under 2 seconds.
#   D. header standalone compile — every src/ header must compile as its
#      own translation unit, pinning the include-what-you-use property
#      absq_lint's include rules approximate.
#   E. fuzz smoke — the tests/fuzz harnesses rebuilt under
#      -DABSQ_SANITIZE=fuzz (ASan+UBSan, libFuzzer when available), each
#      run for 100k iterations or 30 s over the checked-in corpus with
#      no crashes, hangs, or leaks. scripts/format.sh --check rides along
#      as stage F.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
FAILED=0

echo "== stage A: Werror build (strict warning set) =="
cmake -B build-analyze -S . -DCMAKE_BUILD_TYPE=Release \
      -DABSQUBO_WERROR=ON >/dev/null
cmake --build build-analyze -j "$JOBS"

echo
echo "== stage B: clang-tidy (curated profile) =="
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t TIDY_SOURCES < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-analyze -quiet -j "$JOBS" "${TIDY_SOURCES[@]}"
  else
    clang-tidy -p build-analyze --quiet "${TIDY_SOURCES[@]}"
  fi
else
  echo "clang-tidy not found — stage skipped (profile: .clang-tidy; the CI"
  echo "analyze job runs it; install clang-tidy to run locally)"
fi

echo
echo "== stage C: absq_lint (project invariants + graph rules) =="
LINT_START=$(date +%s%N)
./build-analyze/tools/absq_lint --root . --fail-on=error
./build-analyze/tools/absq_lint --root . --format=sarif --fail-on=never \
    > build-analyze/absq_lint.sarif
LINT_ELAPSED_MS=$((($(date +%s%N) - LINT_START) / 1000000))
echo "absq_lint: 2 passes in ${LINT_ELAPSED_MS} ms (SARIF:" \
     "build-analyze/absq_lint.sarif)"
if [[ $LINT_ELAPSED_MS -gt 2000 ]]; then
  echo "analyze.sh: absq_lint exceeded its 2 s budget" >&2
  FAILED=1
fi

echo
echo "== stage D: header standalone compile =="
HEADER_FAILS=0
while IFS= read -r header; do
  if ! g++ -std=c++20 -fsyntax-only -Isrc -Itests/fuzz -x c++ \
       - <<<"#include \"${header#src/}\"" 2>/tmp/header_err.$$; then
    echo "NOT self-contained: $header"
    sed 's/^/    /' /tmp/header_err.$$ | head -5
    HEADER_FAILS=$((HEADER_FAILS + 1))
  fi
done < <(git ls-files 'src/*.hpp')
rm -f /tmp/header_err.$$
if [[ $HEADER_FAILS -ne 0 ]]; then
  echo "analyze.sh: $HEADER_FAILS headers are not self-contained" >&2
  FAILED=1
else
  echo "all $(git ls-files 'src/*.hpp' | wc -l) src/ headers compile standalone"
fi

echo
echo "== stage E: fuzz smoke (ASan+UBSan, 100k iters or 30s per target) =="
cmake -B build-fuzz -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DABSQ_SANITIZE=fuzz -DABSQUBO_BUILD_BENCH=OFF \
      -DABSQUBO_BUILD_EXAMPLES=OFF >/dev/null
FUZZ_TARGETS=(fuzz_json fuzz_protocol fuzz_qubo fuzz_gset fuzz_tsplib
              fuzz_dimacs)
cmake --build build-fuzz -j "$JOBS" --target "${FUZZ_TARGETS[@]}"
for target in "${FUZZ_TARGETS[@]}"; do
  echo "-- $target"
  ./build-fuzz/tests/fuzz/"$target" -runs=100000 -max_total_time=30 \
      "tests/fuzz/corpus/$target"
done

echo
echo "== stage F: format check =="
./scripts/format.sh --check

if [[ $FAILED -ne 0 ]]; then
  echo "analyze.sh: FAILED" >&2
  exit 1
fi
echo
echo "analyze.sh: all static-analysis gates passed"
