#!/usr/bin/env bash
# Chaos test of the durable serving layer, run by CTest (chaos_smoke) and
# by both sanitizer tiers of scripts/check.sh.
#
# The scenario: an absq_serve process with 2 solver slots takes on 2
# running jobs, 4 queued jobs and 1 queued job with a short TTL — then is
# SIGKILLed mid-flight, exactly the crash the write-ahead job journal
# exists for. A second incarnation restarts with --recover and must
# account for every single job:
#
#   * zero jobs lost (the recovery census and absq_jobs_lost_total agree);
#   * the 6 plain jobs all run to completion (resumed from their
#     checkpoints or requeued from their journaled recipes);
#   * the TTL job expired during the downtime — deterministically, into
#     the terminal "deadline" state, because its deadline is anchored to
#     the submission wall clock, not to process lifetime;
#   * resubmitting an in-flight idempotency key returns the ORIGINAL job
#     id, deduplicated, across the crash.
set -euo pipefail

BIN="${1:?usage: chaos_smoke.sh <build-dir>}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "chaos_smoke: FAIL — $1" >&2; exit 1; }

SERVE="$BIN/tools/absq_serve"
CLIENT="$BIN/tools/absq_client"
mkdir "$WORK/ck"

"$BIN/tools/absq_gen" random --bits 40 --seed 11 --out "$WORK/i.qubo"

# Starts a server writing to $1 (log file); extra flags pass through.
# Sets SERVER_PID and PORT.
start_server() {
  local log="$1"; shift
  "$SERVE" --port 0 --solvers 2 --max-queue 16 \
    --checkpoint-dir "$WORK/ck" --checkpoint-interval 0.2 \
    --log-level info "$@" > "$log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died at startup ($log)"
    sleep 0.1
  done
  [[ -n "$PORT" ]] || fail "server never printed its port ($log)"
}

submit() {  # submit <name> [extra flags...] -> prints the job id
  local name="$1"; shift
  "$CLIENT" submit "$WORK/i.qubo" --port "$PORT" --seconds 6 \
    --name "$name" --idempotency-key "$name" "$@" > "$WORK/$name.out"
  sed -n 's/^submitted job \([0-9]*\)$/\1/p' "$WORK/$name.out"
}

running_count() {
  "$CLIENT" list --port "$PORT" | sed -n 's/.* \([0-9]*\) running$/\1/p'
}

# --- phase 1: load the server, then kill it mid-flight -----------------------
start_server "$WORK/serve1.log"

RUNNER1="$(submit runner-1)"
RUNNER2="$(submit runner-2)"
[[ -n "$RUNNER1" && -n "$RUNNER2" ]] || fail "could not parse runner ids"
for _ in $(seq 1 100); do
  [[ "$(running_count)" == "2" ]] && break
  sleep 0.1
done
[[ "$(running_count)" == "2" ]] || fail "runners never occupied both slots"

PLAIN_IDS=("$RUNNER1" "$RUNNER2")
for i in 1 2 3 4; do
  id="$(submit "filler-$i")"
  [[ -n "$id" ]] || fail "could not parse filler-$i id"
  PLAIN_IDS+=("$id")
done

# Give the running jobs a checkpoint cycle or two to land on disk, so the
# recovery has real RunCheckpoints to resume from.
sleep 0.6

# The TTL job goes in last, right before the kill: a 2 s deadline that
# will expire during the ~2.5 s of downtime below.
DOOMED="$(submit doomed --deadline 2)"
[[ -n "$DOOMED" ]] || fail "could not parse the doomed job id"

[[ "$(running_count)" == "2" ]] || fail "expected 2 jobs running at kill time"
"$CLIENT" list --port "$PORT" | grep -q "5 queued" \
  || fail "expected 5 jobs queued at kill time"

kill -9 "$SERVER_PID"
set +e
wait "$SERVER_PID" 2>/dev/null
set -e
SERVER_PID=""

# Downtime long enough for the doomed job's wall-clock TTL to pass.
sleep 2.5

# --- phase 2: restart with --recover, account for every job ------------------
start_server "$WORK/serve2.log" --recover

RECOVERY="$(sed -n 's/^recovery: //p' "$WORK/serve2.log")"
[[ -n "$RECOVERY" ]] || fail "recovering server printed no recovery census"
read -r RESUMED REQUEUED EXPIRED LOST TERMINAL <<< "$(echo "$RECOVERY" \
  | sed 's/[a-z]*=//g')"
echo "chaos_smoke: $RECOVERY"
[[ "$LOST" == "0" ]] || fail "recovery lost $LOST job(s): $RECOVERY"
[[ "$EXPIRED" == "1" ]] \
  || fail "the doomed job's TTL did not expire across the crash: $RECOVERY"
[[ "$((RESUMED + REQUEUED))" == "6" ]] \
  || fail "expected 6 jobs brought back as live work: $RECOVERY"

# Idempotent resubmission across the crash: the same key answers with the
# ORIGINAL job id, deduplicated — no duplicate work was admitted.
"$CLIENT" submit "$WORK/i.qubo" --port "$PORT" --seconds 6 \
  --name runner-1 --idempotency-key runner-1 > "$WORK/dedup.out"
grep -q "submitted job $RUNNER1 (deduplicated)" "$WORK/dedup.out" \
  || fail "resubmitted key did not deduplicate to job $RUNNER1 ($(cat "$WORK/dedup.out"))"

# Every plain job must finish — completed, never lost.
for id in "${PLAIN_IDS[@]}"; do
  "$CLIENT" wait "$id" --port "$PORT" --timeout 120 > "$WORK/wait$id.out" \
    || fail "recovered job $id did not complete ($(cat "$WORK/wait$id.out"))"
  grep -q "job $id .*: done" "$WORK/wait$id.out" \
    || fail "recovered job $id is not done ($(cat "$WORK/wait$id.out"))"
done

# The doomed job is terminal with the typed deadline state — a
# deterministic failure, not a lost job.
"$CLIENT" status "$DOOMED" --port "$PORT" > "$WORK/doomed.out"
grep -q "job $DOOMED (doomed): deadline" "$WORK/doomed.out" \
  || fail "doomed job is not deadline-exceeded ($(cat "$WORK/doomed.out"))"

# The metrics agree with the census: everything recovered, nothing lost.
"$CLIENT" metrics --port "$PORT" > "$WORK/metrics.prom"
grep -q "^absq_jobs_recovered_total 6$" "$WORK/metrics.prom" \
  || fail "absq_jobs_recovered_total != 6"
grep -q "^absq_jobs_lost_total 0$" "$WORK/metrics.prom" \
  || fail "absq_jobs_lost_total != 0"

# Graceful exit: the drain must still work after a recovery.
"$CLIENT" shutdown --port "$PORT" > /dev/null
DRAIN_OK=""
for _ in $(seq 1 200); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.1
done
[[ -n "$DRAIN_OK" ]] || fail "recovered server did not exit after shutdown"
set +e
wait "$SERVER_PID"
code=$?
set -e
SERVER_PID=""
[[ "$code" == "0" ]] || fail "recovered server exited $code, expected 0"

echo "chaos_smoke: OK"
