#!/usr/bin/env bash
# End-to-end smoke test of the serving layer, run by CTest (serve_smoke).
#
# One absq_serve process must: accept 8 concurrent absq_client submissions
# and complete them all with energies matching an equivalent absq_solve run
# (same seed + stop criteria), honor a mid-run cancel, serve live
# /metrics + /status + /healthz scrapes over its --http-port while a job
# runs, reject a submission beyond --max-queue with the typed queue_full
# backpressure error, and drain gracefully (exit 0, telemetry files
# written, parseable JSONL logs) on SIGTERM.
set -euo pipefail

BIN="${1:?usage: serve_smoke.sh <build-dir>}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL — $1" >&2; exit 1; }

SERVE="$BIN/tools/absq_serve"
CLIENT="$BIN/tools/absq_client"
mkdir "$WORK/ck"

# --- CLI conventions (shared across every tool) ------------------------------
for tool in absq_serve absq_client absq_solve absq_gen absq_info; do
  "$BIN/tools/$tool" --help > /dev/null || fail "$tool --help exited nonzero"
  "$BIN/tools/$tool" --version | grep -q "absqubo 1" \
    || fail "$tool --version printed nothing useful"
  set +e
  "$BIN/tools/$tool" --definitely-bogus-flag > /dev/null 2> "$WORK/usage.err"
  code=$?
  set -e
  [[ "$code" == "2" ]] || fail "$tool unknown flag exited $code, expected 2"
  grep -q "Flags:" "$WORK/usage.err" \
    || fail "$tool unknown flag printed no usage on stderr"
done

# --- reference solve ---------------------------------------------------------
# The solver is timing-nondeterministic, so "same result" is defined through
# a target: a plain absq_solve finds the reference energy for this seed, and
# every server job must reach that same target (reached_target in replies).
"$BIN/tools/absq_gen" random --bits 40 --seed 11 --out "$WORK/i.qubo"
"$BIN/tools/absq_solve" "$WORK/i.qubo" --seconds 2 --seed 7 \
  > "$WORK/reference.out"
TARGET="$(sed -n 's/^best energy:  \(-\?[0-9]*\).*/\1/p' "$WORK/reference.out")"
[[ -n "$TARGET" ]] || fail "could not parse the reference energy"

# --- start the server --------------------------------------------------------
"$SERVE" --port 0 --solvers 2 --max-queue 8 --checkpoint-dir "$WORK/ck" \
  --metrics "$WORK/serve.prom" --report "$WORK/serve.jsonl" \
  --http-port 0 --log-level info --log-file "$WORK/serve.ndjson" \
  > "$WORK/serve.log" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
          "$WORK/serve.log")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died at startup"
  sleep 0.1
done
[[ -n "$PORT" ]] || fail "server never printed its port"
HTTP_PORT="$(sed -n 's/^http on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
             "$WORK/serve.log")"
[[ -n "$HTTP_PORT" ]] || fail "server never printed its http port"

# GET an observability endpoint (curl when present, bash /dev/tcp
# otherwise, so the test has no dependency beyond bash).
http_get() {
  if command -v curl > /dev/null 2>&1; then
    curl -sf --max-time 10 "http://127.0.0.1:$HTTP_PORT$1"
  else
    exec 3<> "/dev/tcp/127.0.0.1/$HTTP_PORT"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
    sed '1,/^\r\{0,1\}$/d' <&3
    exec 3<&- 3>&-
  fi
}

"$CLIENT" ping --port "$PORT" | grep -q pong || fail "server does not ping"

# --- 8 concurrent submissions, all must reach the reference energy -----------
for i in $(seq 1 8); do
  "$CLIENT" submit "$WORK/i.qubo" --port "$PORT" --target "$TARGET" \
    --seconds 30 --seed "$i" --name "bulk-$i" --wait --timeout 120 \
    > "$WORK/job$i.out" 2>&1 &
  eval "CPID$i=$!"
done
for i in $(seq 1 8); do
  eval "pid=\$CPID$i"
  wait "$pid" || fail "concurrent submission $i failed ($(cat "$WORK/job$i.out"))"
  grep -q "target reached" "$WORK/job$i.out" \
    || fail "job $i did not reach the reference energy $TARGET"
done

# --- mid-run cancel ----------------------------------------------------------
"$CLIENT" submit "$WORK/i.qubo" --port "$PORT" --seconds 60 --name victim \
  > "$WORK/victim.out"
VICTIM_ID="$(sed -n 's/^submitted job \([0-9]*\)$/\1/p' "$WORK/victim.out")"
[[ -n "$VICTIM_ID" ]] || fail "could not parse the victim job id"
sleep 0.5

# --- live observability scrape (victim job is running right now) -------------
http_get /healthz | grep -q "ok" || fail "/healthz did not answer ok"
http_get /status > "$WORK/status.json"
grep -q '"state":"running"' "$WORK/status.json" \
  || fail "/status shows no running job while the victim solves"
grep -q "\"id\":$VICTIM_ID" "$WORK/status.json" \
  || fail "/status does not list the victim job"
grep -q '"incumbent_energy"' "$WORK/status.json" \
  || fail "/status lacks the incumbent energy of the running job"
http_get /metrics > "$WORK/live.prom"
grep -q "^absq_jobs_submitted " "$WORK/live.prom" \
  || fail "/metrics lacks the manager series"
grep -q "job=\"$VICTIM_ID\"" "$WORK/live.prom" \
  || fail "/metrics lacks per-job labelled solver series"
grep -q "^absq_http_requests_total " "$WORK/live.prom" \
  || fail "/metrics lacks the exporter self-series"

"$CLIENT" cancel "$VICTIM_ID" --port "$PORT" | grep -q "cancel requested" \
  || fail "cancel was not accepted"
set +e
"$CLIENT" wait "$VICTIM_ID" --port "$PORT" --timeout 30 > "$WORK/victim2.out"
code=$?
set -e
[[ "$code" == "130" ]] || fail "cancelled job exited $code, expected 130"
grep -q "cancelled" "$WORK/victim2.out" || fail "victim is not cancelled"

# --- backpressure beyond --max-queue ----------------------------------------
# Two long blockers occupy both slots; 8 more fill the queue to its bound;
# the 9th must be rejected with the typed queue_full error.
BLOCK_IDS=()
for i in 1 2; do
  "$CLIENT" submit "$WORK/i.qubo" --port "$PORT" --seconds 60 \
    --name "blocker-$i" > "$WORK/block$i.out"
  BLOCK_IDS+=("$(sed -n 's/^submitted job \([0-9]*\)$/\1/p' "$WORK/block$i.out")")
done
for _ in $(seq 1 100); do
  RUNNING="$("$CLIENT" list --port "$PORT" | sed -n 's/.* \([0-9]*\) running$/\1/p')"
  [[ "$RUNNING" == "2" ]] && break
  sleep 0.1
done
[[ "$RUNNING" == "2" ]] || fail "blockers never occupied both slots"
QUEUED_IDS=()
for i in $(seq 1 8); do
  "$CLIENT" submit "$WORK/i.qubo" --port "$PORT" --seconds 60 \
    --name "filler-$i" > "$WORK/fill$i.out"
  QUEUED_IDS+=("$(sed -n 's/^submitted job \([0-9]*\)$/\1/p' "$WORK/fill$i.out")")
done
set +e
"$CLIENT" submit "$WORK/i.qubo" --port "$PORT" --seconds 60 --name overflow \
  > /dev/null 2> "$WORK/overflow.err"
code=$?
set -e
[[ "$code" != "0" ]] || fail "submission beyond --max-queue was accepted"
grep -q "queue is full" "$WORK/overflow.err" \
  || fail "overflow rejection lacked the typed queue_full message"

# Clear the backlog so the graceful drain below is quick.
for id in "${QUEUED_IDS[@]}" "${BLOCK_IDS[@]}"; do
  "$CLIENT" cancel "$id" --port "$PORT" > /dev/null
done

# --- graceful drain on SIGTERM ----------------------------------------------
kill -TERM "$SERVER_PID"
DRAIN_OK=""
for _ in $(seq 1 200); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.1
done
[[ -n "$DRAIN_OK" ]] || fail "server did not exit after SIGTERM"
set +e
wait "$SERVER_PID"
code=$?
set -e
SERVER_PID=""
[[ "$code" == "0" ]] || fail "server exited $code after SIGTERM, expected 0"
grep -q "clean shutdown" "$WORK/serve.log" \
  || fail "server log lacks the clean-shutdown line"

# Telemetry written at shutdown: 19 submissions, 1 typed rejection.
grep -q "absq_jobs_submitted 19" "$WORK/serve.prom" \
  || fail "metrics file lacks the submitted count"
grep -q "absq_jobs_rejected 1" "$WORK/serve.prom" \
  || fail "metrics file lacks the rejected count"
# The durability series exist and report a quiet life: this run never
# crashed, so nothing was recovered and — crucially — nothing was lost.
grep -q "absq_jobs_recovered_total 0" "$WORK/serve.prom" \
  || fail "metrics file lacks the recovered-jobs series"
grep -q "absq_jobs_lost_total 0" "$WORK/serve.prom" \
  || fail "metrics file lacks the lost-jobs series"
[[ "$(grep -c '"type":"job"' "$WORK/serve.jsonl")" == "19" ]] \
  || fail "report file does not list all 19 jobs"

# Per-job checkpoints were written for completed jobs.
ls "$WORK"/ck/job-*.ck > /dev/null 2>&1 || fail "no per-job checkpoints"

# Structured JSONL logs: admissions and job lifecycle were logged with the
# job id stamped on each line.
grep -q '"msg":"job admitted"' "$WORK/serve.ndjson" \
  || fail "structured log lacks job-admitted lines"
grep -q '"msg":"job started","job":' "$WORK/serve.ndjson" \
  || fail "structured log lacks job-stamped lifecycle lines"
grep -q '"msg":"job cancelled"' "$WORK/serve.ndjson" \
  || fail "structured log lacks the cancel line"

echo "serve_smoke: OK"
