// absq_info — inspect a QUBO instance file: size, density, weight
// statistics, memory footprint, and the kernel geometry the simulated
// RTX 2080 Ti would run it with (the Table 2 columns for this instance).
//
//   absq_info instance.qubo
//   absq_info instance.qubo --verify best.sol
#include <cinttypes>
#include <cstdio>
#include <string>

#include "qubo/energy.hpp"
#include "qubo/io.hpp"
#include "sim/device_spec.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  absq::CliParser cli("absq_info — inspect a QUBO instance file");
  cli.add_flag("verify", std::string(""),
               "solution file to check against the instance");
  if (!cli.parse(argc, argv)) return 0;
  ABSQ_CHECK(cli.positional().size() == 1, "exactly one instance file");

  const absq::WeightMatrix w = absq::read_qubo_file(cli.positional()[0]);
  const absq::BitIndex n = w.size();

  absq::Weight min_weight = 0;
  absq::Weight max_weight = 0;
  std::int64_t diagonal_nonzeros = 0;
  for (absq::BitIndex i = 0; i < n; ++i) {
    if (w.at(i, i) != 0) ++diagonal_nonzeros;
    for (absq::BitIndex j = i; j < n; ++j) {
      min_weight = std::min(min_weight, w.at(i, j));
      max_weight = std::max(max_weight, w.at(i, j));
    }
  }
  const std::size_t nonzeros = w.nonzeros();
  const double density =
      static_cast<double>(nonzeros) /
      (static_cast<double>(n) * (n + 1) / 2.0);

  std::printf("bits:          %u\n", n);
  std::printf("nonzeros:      %zu (upper triangle, %.2f%% dense)\n", nonzeros,
              100.0 * density);
  std::printf("diagonal:      %" PRId64 " nonzero\n", diagonal_nonzeros);
  std::printf("weight range:  [%d, %d]\n", min_weight, max_weight);
  std::printf("memory:        %.1f MiB dense int16\n",
              static_cast<double>(w.bytes()) / (1 << 20));

  const absq::sim::DeviceSpec spec;
  std::printf("\nRTX 2080 Ti kernel geometry (100%% occupancy configs):\n");
  std::printf("%6s %10s %12s\n", "p", "thr/blk", "blocks/GPU");
  for (const auto p : absq::sim::feasible_bits_per_thread_sweep(spec, n)) {
    const auto occ = absq::sim::compute_occupancy(spec, n, p);
    std::printf("%6u %10u %12u\n", p, occ.threads_per_block,
                occ.active_blocks);
  }

  if (const std::string path = cli.get_string("verify"); !path.empty()) {
    const absq::StoredSolution solution = absq::read_solution_file(path);
    ABSQ_CHECK(solution.bits.size() == n,
               "solution has " << solution.bits.size() << " bits, instance "
                               << n);
    const absq::Energy actual = absq::full_energy(w, solution.bits);
    std::printf("\nsolution:      claimed %" PRId64 ", actual %" PRId64
                " — %s\n",
                solution.energy, actual,
                solution.energy == actual ? "VERIFIED" : "MISMATCH");
    return solution.energy == actual ? 0 : 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const absq::CliUsageError&) {
    return absq::kUsageExitCode;  // parse already printed usage to stderr
  } catch (const std::exception& error) {
    std::fprintf(stderr, "absq_info: %s\n", error.what());
    return 1;
  }
}
