// absq_lint — enforce the project invariants no generic analyzer knows
// (see src/util/lint.hpp for the rule set and suppression syntax).
//
//   absq_lint                        # lint src/ tools/ tests/ bench/ examples/
//   absq_lint src/serve tools/x.cpp  # lint specific dirs/files
//   absq_lint --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

void collect(const fs::path& root, const fs::path& arg,
             std::vector<fs::path>* files) {
  const fs::path resolved = arg.is_absolute() ? arg : root / arg;
  if (fs::is_directory(resolved)) {
    for (const auto& entry : fs::recursive_directory_iterator(resolved)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files->push_back(entry.path());
      }
    }
  } else if (fs::is_regular_file(resolved)) {
    files->push_back(resolved);
  } else {
    throw absq::CliUsageError("no such file or directory: " + arg.string());
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  ABSQ_CHECK(in.good(), "cannot read " << path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run(int argc, char** argv) {
  absq::CliParser cli(
      "absq_lint — project-invariant checker (tier 4 of the verification "
      "gate)");
  cli.add_flag("root", std::string("."),
               "repository root; rule paths are resolved relative to it");
  cli.add_flag("list-rules", false, "print the rule table and exit");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_bool("list-rules")) {
    for (const absq::lint::RuleInfo& rule : absq::lint::rules()) {
      std::printf("%s  %-18s %s\n", rule.code, rule.name, rule.summary);
    }
    return 0;
  }

  const fs::path root = fs::canonical(cli.get_string("root"));
  std::vector<std::string> args(cli.positional());
  if (args.empty()) {
    args = {"src", "tools", "tests", "bench", "examples"};
  }

  std::vector<fs::path> files;
  for (const std::string& arg : args) collect(root, arg, &files);

  std::size_t findings = 0;
  for (const fs::path& file : files) {
    // Rules key off repo-relative forward-slash paths (e.g. src/obs/…).
    const std::string rel =
        fs::relative(fs::canonical(file), root).generic_string();
    const auto diagnostics = absq::lint::lint_file(rel, read_file(file));
    for (const absq::lint::Diagnostic& d : diagnostics) {
      std::printf("%s\n", absq::lint::format_diagnostic(d).c_str());
    }
    findings += diagnostics.size();
  }

  if (findings != 0) {
    std::fprintf(stderr, "absq_lint: %zu finding%s\n", findings,
                 findings == 1 ? "" : "s");
    return 1;
  }
  std::printf("absq_lint: %zu files clean\n", files.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const absq::CliUsageError&) {
    return absq::kUsageExitCode;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "absq_lint: %s\n", error.what());
    return 1;
  }
}
