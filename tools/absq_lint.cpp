// absq_lint — enforce the project invariants no generic analyzer knows
// (see src/util/lint.hpp for the rule set and suppression syntax; the
// whole-project graph rules ABSQ006–ABSQ009 live in src/util/lint_graph.hpp).
//
//   absq_lint                        # lint src/ tools/ tests/ bench/ examples/
//   absq_lint src/serve tools/x.cpp  # lint specific dirs/files
//   absq_lint --format=sarif         # SARIF 2.1.0 on stdout (CI annotations)
//   absq_lint --fail-on=never        # report, but always exit 0
//   absq_lint --graph-dump=dot       # module/lock/call graphs as Graphviz
//   absq_lint --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/lint.hpp"
#include "util/lint_graph.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

void collect(const fs::path& root, const fs::path& arg,
             std::vector<fs::path>* files) {
  const fs::path resolved = arg.is_absolute() ? arg : root / arg;
  if (fs::is_directory(resolved)) {
    for (const auto& entry : fs::recursive_directory_iterator(resolved)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files->push_back(entry.path());
      }
    }
  } else if (fs::is_regular_file(resolved)) {
    files->push_back(resolved);
  } else {
    throw absq::CliUsageError("no such file or directory: " + arg.string());
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  ABSQ_CHECK(in.good(), "cannot read " << path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// "ABSQ003:2 ABSQ007:1" — rules with at least one finding, code order.
std::string summarize_counts(
    const std::vector<absq::lint::Diagnostic>& diagnostics) {
  std::string out;
  for (const auto& [code, count] : absq::lint::count_by_rule(diagnostics)) {
    if (count == 0) continue;
    if (!out.empty()) out += ' ';
    out += code + ":" + std::to_string(count);
  }
  return out;
}

int run(int argc, char** argv) {
  absq::CliParser cli(
      "absq_lint — project-invariant checker (tier 4 of the verification "
      "gate)");
  cli.add_flag("root", std::string("."),
               "repository root; rule paths are resolved relative to it");
  cli.add_flag("layers", std::string("lint_layers.toml"),
               "module layering manifest for ABSQ006, relative to --root "
               "(skipped with a note if absent)");
  cli.add_flag("format", std::string("text"),
               "output format: text | sarif (SARIF 2.1.0 on stdout)");
  cli.add_flag("fail-on", std::string("error"),
               "exit status policy: error (findings exit 1) | never "
               "(always exit 0; for report-only CI steps)");
  cli.add_flag("graph-dump", std::string(""),
               "dump the module/lock-order/call graphs instead of linting: "
               "dot (Graphviz on stdout)");
  cli.add_flag("list-rules", false, "print the rule table and exit");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_bool("list-rules")) {
    for (const absq::lint::RuleInfo& rule : absq::lint::rules()) {
      std::printf("%s  %-20s %s\n", rule.code, rule.name, rule.summary);
    }
    return 0;
  }

  const std::string format = cli.get_string("format");
  if (format != "text" && format != "sarif") {
    throw absq::CliUsageError("unknown --format: " + format +
                              " (expected text or sarif)");
  }
  const std::string fail_on = cli.get_string("fail-on");
  if (fail_on != "error" && fail_on != "never") {
    throw absq::CliUsageError("unknown --fail-on: " + fail_on +
                              " (expected error or never)");
  }
  const std::string graph_dump = cli.get_string("graph-dump");
  if (!graph_dump.empty() && graph_dump != "dot") {
    throw absq::CliUsageError("unknown --graph-dump: " + graph_dump +
                              " (expected dot)");
  }

  const fs::path root = fs::canonical(cli.get_string("root"));
  std::vector<std::string> args(cli.positional());
  if (args.empty()) {
    args = {"src", "tools", "tests", "bench", "examples"};
  }

  std::vector<fs::path> paths;
  for (const std::string& arg : args) collect(root, arg, &paths);

  std::vector<absq::lint::ProjectFile> files;
  files.reserve(paths.size());
  for (const fs::path& file : paths) {
    // Rules key off repo-relative forward-slash paths (e.g. src/obs/…).
    files.push_back(absq::lint::ProjectFile{
        fs::relative(fs::canonical(file), root).generic_string(),
        read_file(file)});
  }

  if (graph_dump == "dot") {
    absq::lint::ProjectIndex index;
    for (const absq::lint::ProjectFile& f : files) {
      index.add_file(f.path, f.content);
    }
    std::fputs(absq::lint::dump_dot(index).c_str(), stdout);
    return 0;
  }

  const fs::path layers_path = root / cli.get_string("layers");
  absq::lint::LayerManifest manifest;
  bool have_manifest = false;
  if (fs::is_regular_file(layers_path)) {
    manifest = absq::lint::LayerManifest::parse(read_file(layers_path));
    have_manifest = true;
  } else {
    std::fprintf(stderr,
                 "absq_lint: note: no layering manifest at %s — ABSQ006 "
                 "skipped\n",
                 layers_path.string().c_str());
  }

  const std::vector<absq::lint::Diagnostic> diagnostics =
      absq::lint::lint_project(files, have_manifest ? &manifest : nullptr);

  if (format == "sarif") {
    std::fputs(absq::lint::to_sarif(diagnostics).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    for (const absq::lint::Diagnostic& d : diagnostics) {
      std::printf("%s\n", absq::lint::format_diagnostic(d).c_str());
    }
  }

  if (!diagnostics.empty()) {
    std::fprintf(stderr, "absq_lint: %zu finding%s (%s)\n",
                 diagnostics.size(), diagnostics.size() == 1 ? "" : "s",
                 summarize_counts(diagnostics).c_str());
    return fail_on == "never" ? 0 : 1;
  }
  if (format == "text") {
    std::printf("absq_lint: %zu files clean (%zu rules)\n", files.size(),
                absq::lint::rules().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const absq::CliUsageError&) {
    return absq::kUsageExitCode;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "absq_lint: %s\n", error.what());
    return 1;
  }
}
