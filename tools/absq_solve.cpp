// absq_solve — the command-line front end of the ABS solver.
//
// Reads an instance in any of the supported formats, runs the solver with
// fully-configurable stop criteria and device geometry, and prints (or
// saves) the best solution found.
//
//   absq_solve instance.qubo --seconds 10
//   absq_solve graph.gset --format gset --target -11624
//   absq_solve route.tsp  --format tsplib --seconds 30
//   absq_solve formula.cnf --format dimacs --seconds 5
//   absq_solve instance.qubo --devices 4 --adaptive --out best.sol
//   absq_solve instance.qubo --seconds 5 --metrics run.prom
//              --trace run.json --report run.jsonl
//
// Problem-aware decoding: for gset/tsplib/dimacs inputs the result is also
// reported in the problem's own terms (cut weight, tour, violated
// clauses).
//
// Telemetry: --metrics writes a Prometheus text scrape of the metrics
// registry, --trace writes Chrome trace_event JSON (open in
// chrome://tracing or ui.perfetto.dev), --report writes the JSONL run
// report (see docs/observability.md). Any subset may be enabled;
// instrumentation is off (and costs nothing) when none is.
//
// Robustness (docs/robustness.md): --checkpoint enables crash-safe periodic
// run snapshots, --resume restarts from one, --watchdog-grace /
// --max-restarts / --restart-backoff configure the device watchdog. SIGINT
// and SIGTERM request a graceful stop (final checkpoint included); a second
// signal kills the process the old-fashioned way.
#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>

#include "abs/solver.hpp"
#include "ga/pool_io.hpp"
#include "portfolio/block_algorithm.hpp"
#include "obs/http_exporter.hpp"
#include "obs/log.hpp"
#include "abs/report.hpp"
#include "problems/graph.hpp"
#include "problems/maxcut.hpp"
#include "problems/sat.hpp"
#include "problems/tsp.hpp"
#include "qubo/energy.hpp"
#include "qubo/io.hpp"
#include "qubo/kernel.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

/// The solver the signal handler should cancel. request_stop() is a single
/// relaxed atomic store, which is as async-signal-safe as it gets.
std::atomic<absq::AbsSolver*> g_active_solver{nullptr};

extern "C" void handle_stop_signal(int signum) {
  if (absq::AbsSolver* solver = g_active_solver.load()) {
    solver->request_stop();
  }
  // A second Ctrl-C means "now": restore the default disposition so the
  // next delivery terminates the process.
  std::signal(signum, SIG_DFL);
}

int run(int argc, char** argv) {
  absq::CliParser cli("absq_solve — Adaptive Bulk Search QUBO solver");
  cli.add_flag("format", std::string("qubo"),
               "input format: qubo | gset | tsplib | dimacs");
  cli.add_flag("seconds", 5.0, "wall-clock limit (0 = none)");
  cli.add_flag("target", std::string(""),
               "stop when this energy is reached (empty = none)");
  cli.add_flag("max-flips", std::int64_t{0}, "flip budget (0 = none)");
  cli.add_flag("devices", std::int64_t{1}, "simulated GPUs");
  cli.add_flag("blocks", std::int64_t{8},
               "search blocks per device (0 = occupancy-derived)");
  cli.add_flag("local-steps", std::int64_t{0},
               "Step 4b flips per iteration (0 = one sweep)");
  cli.add_flag("threads", std::int64_t{-1},
               "worker threads per device (-1 = auto: cores/devices, "
               "0 = single legacy device thread)");
  cli.add_flag("pool", std::int64_t{128}, "solution pool capacity");
  cli.add_flag("adaptive", false, "enable adaptive window switching");
  cli.add_flag("islands", std::int64_t{1},
               "independently seeded island pools with ring migration "
               "(1 = single shared pool, the classic ABS)");
  cli.add_flag("portfolio", std::string(""),
               "comma-separated block-search portfolio: "
               "min-delta | sa | multistart (empty = min-delta only; more "
               "than one member also enables the adaptive controller)");
  cli.add_flag("migration-interval", std::int64_t{0},
               "GA rounds between elite ring migrations (0 = auto)");
  cli.add_flag("kernel", std::string("auto"),
               "flip-kernel form: auto | dense | dense-simd | sparse "
               "(all bit-identical; auto picks by instance density)");
  cli.add_flag("delta32", false,
               "opt into the 32-bit delta mode (falls back to 64-bit when "
               "the worst-case overflow precheck fails)");
  cli.add_flag("seed", std::int64_t{1}, "solver seed");
  cli.add_flag("out", std::string(""), "write best solution to this file");
  cli.add_flag("print-trace", false, "print the improvement trace");
  cli.add_flag("metrics", std::string(""),
               "write a Prometheus text scrape to this file");
  cli.add_flag("trace", std::string(""),
               "write a Chrome trace_event JSON to this file "
               "(chrome://tracing / Perfetto)");
  cli.add_flag("report", std::string(""),
               "write the JSONL run report to this file");
  cli.add_flag("snapshot-interval", 0.0,
               "periodic RunSnapshot cadence in seconds (0 = off)");
  cli.add_flag("checkpoint", std::string(""),
               "write crash-safe run checkpoints to this file (atomic "
               "temp+rename; also written on graceful exit and SIGINT)");
  cli.add_flag("checkpoint-interval", 30.0,
               "periodic checkpoint cadence in seconds");
  cli.add_flag("resume", std::string(""),
               "resume from a checkpoint file (pool is warm-started, "
               "elapsed time carries over, seed is remixed)");
  cli.add_flag("watchdog-grace", 0.0,
               "quarantine a device whose iteration counter stalls for "
               "this many seconds (0 = stall detection off)");
  cli.add_flag("max-restarts", std::int64_t{0},
               "restart budget per device for failed (thrown) devices");
  cli.add_flag("restart-backoff", 0.0,
               "seconds between a device failure and its restart");
  cli.add_flag("http-port", std::int64_t{-1},
               "serve GET /metrics /status /trace /healthz on this "
               "127.0.0.1 port while solving (0 = ephemeral, -1 = off)");
  cli.add_flag("log-level", std::string("warn"),
               "structured JSONL log threshold: debug|info|warn|error|off");
  cli.add_flag("log-file", std::string(""),
               "append structured log lines to this file (default stderr)");
  if (!cli.parse(argc, argv)) return 0;

  absq::obs::Logger::global().set_level(
      absq::obs::log_level_from_string(cli.get_string("log-level")));
  if (const std::string log_file = cli.get_string("log-file");
      !log_file.empty()) {
    absq::obs::Logger::global().open_file(log_file);
  }

  ABSQ_CHECK(cli.positional().size() == 1,
             "exactly one instance file expected (see --help)");
  const std::string path = cli.positional()[0];
  const std::string format = cli.get_string("format");

  // Load the instance; remember problem context for decoding.
  absq::WeightMatrix w;
  absq::WeightedGraph graph;
  absq::TspQubo tsp_qubo;
  absq::TspInstance tsp;
  absq::SatFormula formula;
  if (format == "qubo") {
    w = absq::read_qubo_file(path);
  } else if (format == "gset") {
    graph = absq::read_gset_file(path);
    w = absq::maxcut_to_qubo(graph);
  } else if (format == "tsplib") {
    tsp = absq::read_tsplib_file(path);
    tsp_qubo = absq::tsp_to_qubo(tsp);
    w = tsp_qubo.w;
  } else if (format == "dimacs") {
    formula = absq::read_dimacs_file(path);
    w = absq::sat_to_qubo(formula).w;
  } else {
    ABSQ_CHECK(false, "unknown --format '" << format << "'");
  }
  std::printf("instance: %s — %u bits, %zu nonzeros, %.1f MiB\n",
              path.c_str(), w.size(), w.nonzeros(),
              static_cast<double>(w.bytes()) / (1 << 20));

  absq::AbsConfig config;
  config.num_devices = static_cast<std::uint32_t>(cli.get_int("devices"));
  config.device.block_limit =
      static_cast<std::uint32_t>(cli.get_int("blocks"));
  config.device.local_steps =
      static_cast<std::uint64_t>(cli.get_int("local-steps"));
  config.device.adaptive = cli.get_bool("adaptive");
  config.device.kernel.form =
      absq::parse_kernel_form(cli.get_string("kernel"));
  config.device.kernel.narrow_delta = cli.get_bool("delta32");
  {
    // Print the plan the devices will run (each device builds an identical
    // plan from the same options).
    const absq::QuboKernel plan(w, config.device.kernel);
    std::printf("kernel: %s\n", plan.description().c_str());
  }
  // -1 is the documented "auto" sentinel; anything else negative is a
  // typo that must not silently mean auto (or wrap through a cast).
  const std::int64_t threads = cli.get_int("threads");
  ABSQ_CHECK(threads >= -1 &&
                 threads <= std::numeric_limits<std::uint32_t>::max(),
             "--threads must be -1 (auto) or a worker count, got "
                 << threads);
  if (threads >= 0) {
    config.device.threads_per_device = static_cast<std::uint32_t>(threads);
  }
  config.pool_capacity = static_cast<std::size_t>(cli.get_int("pool"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::int64_t islands = cli.get_int("islands");
  ABSQ_CHECK(islands >= 1 && islands <= 64,
             "--islands must be in [1, 64], got " << islands);
  config.portfolio.islands = static_cast<std::uint32_t>(islands);
  if (const std::string portfolio = cli.get_string("portfolio");
      !portfolio.empty()) {
    config.portfolio.algorithms = absq::portfolio::parse_portfolio(portfolio);
    if (config.portfolio.algorithm_list().size() > 1 ||
        config.portfolio.islands > 1) {
      config.portfolio.controller = true;
    }
  }
  config.portfolio.migration_interval =
      static_cast<std::uint64_t>(cli.get_int("migration-interval"));
  if (config.portfolio.diverse()) {
    std::printf("diverse: %u island%s, portfolio %s, controller %s\n",
                config.portfolio.islands,
                config.portfolio.islands == 1 ? "" : "s",
                absq::portfolio::portfolio_to_string(
                    config.portfolio.algorithm_list())
                    .c_str(),
                config.portfolio.controller ? "on" : "off");
  }
  config.snapshot_interval_seconds = cli.get_double("snapshot-interval");
  config.checkpoint_path = cli.get_string("checkpoint");
  config.checkpoint_interval_seconds = cli.get_double("checkpoint-interval");
  config.watchdog.stall_grace_seconds = cli.get_double("watchdog-grace");
  config.watchdog.max_restarts =
      static_cast<std::uint32_t>(cli.get_int("max-restarts"));
  config.watchdog.restart_backoff_seconds =
      cli.get_double("restart-backoff");

  if (const std::string resume = cli.get_string("resume"); !resume.empty()) {
    const absq::RunCheckpoint checkpoint =
        absq::read_checkpoint_file(resume, config.pool_capacity);
    config.warm_start = checkpoint.pool;
    config.elapsed_offset_seconds = checkpoint.elapsed_seconds;
    // Continue the checkpointed run's stream without replaying it.
    config.seed = absq::mix64(checkpoint.seed + 1);
    std::printf("resumed from %s — %zu pool entries, %.1f s elapsed, "
                "best %" PRId64 "\n",
                resume.c_str(), checkpoint.pool->size(),
                checkpoint.elapsed_seconds, checkpoint.pool->best_energy());
  }

  // Telemetry sinks, created when an export was requested — or when the
  // live HTTP surface is up, which needs both to serve /metrics and
  // /trace during the run.
  const std::string metrics_path = cli.get_string("metrics");
  const std::string trace_path = cli.get_string("trace");
  const std::string report_path = cli.get_string("report");
  const std::int64_t http_port = cli.get_int("http-port");
  ABSQ_CHECK(http_port >= -1 && http_port <= 65535,
             "--http-port must be in [0, 65535], or -1 for off");
  std::unique_ptr<absq::obs::MetricsRegistry> registry;
  std::unique_ptr<absq::obs::EventTracer> tracer;
  if (!metrics_path.empty() || !report_path.empty() || http_port >= 0) {
    registry = std::make_unique<absq::obs::MetricsRegistry>();
    config.telemetry.metrics = registry.get();
  }
  if (!trace_path.empty() || http_port >= 0) {
    tracer = std::make_unique<absq::obs::EventTracer>();
    config.telemetry.tracer = tracer.get();
  }
  std::unique_ptr<absq::obs::HttpExporter> http;
  if (http_port >= 0) {
    absq::obs::HttpExporterConfig http_config;
    http_config.port = static_cast<int>(http_port);
    http_config.metrics = registry.get();
    http_config.tracer = tracer.get();
    http = std::make_unique<absq::obs::HttpExporter>(std::move(http_config));
    http->start();
    std::printf("http on 127.0.0.1:%d\n", http->port());
    std::fflush(stdout);
  }

  absq::StopCriteria stop;
  stop.time_limit_seconds = cli.get_double("seconds");
  if (const std::string target = cli.get_string("target"); !target.empty()) {
    stop.target_energy = std::stoll(target);
  }
  stop.max_flips = static_cast<std::uint64_t>(cli.get_int("max-flips"));
  ABSQ_CHECK(stop.bounded(),
             "set at least one of --seconds / --target / --max-flips");

  absq::AbsSolver solver(w, config);
  g_active_solver.store(&solver);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  const absq::AbsResult result = solver.run(stop);
  g_active_solver.store(nullptr);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (result.cancelled) {
    std::printf("interrupted — stopping gracefully%s\n",
                config.checkpoint_path.empty() ? ""
                                               : " (checkpoint written)");
  }
  std::printf("best energy:  %" PRId64 "%s\n", result.best_energy,
              result.reached_target ? "  (target reached)" : "");
  ABSQ_CHECK(absq::full_energy(w, result.best) == result.best_energy,
             "internal error: reported energy does not verify");
  std::printf("flips:        %" PRIu64 "  (%.3g solutions/s)\n",
              result.total_flips, result.search_rate);
  std::printf("pool:         %" PRIu64 " inserted, %" PRIu64
              " duplicates rejected, %" PRIu64 " evictions\n",
              result.reports_inserted, result.duplicates_rejected,
              result.pool_evictions);
  for (const auto& dev : result.devices) {
    std::printf("device %u:     %u worker%s, %" PRIu64 " iterations, %" PRIu64
                " target misses, %" PRIu64 " targets / %" PRIu64
                " solutions dropped\n",
                dev.device_id, dev.workers, dev.workers == 1 ? "" : "s",
                dev.iterations, dev.target_misses, dev.targets_dropped,
                dev.solutions_dropped);
    if (dev.health != absq::DeviceHealth::kHealthy || dev.restarts > 0) {
      std::printf("device %u:     %s after %u restart%s — %s\n",
                  dev.device_id, absq::to_string(dev.health), dev.restarts,
                  dev.restarts == 1 ? "" : "s",
                  dev.failure.empty() ? "recovered" : dev.failure.c_str());
    }
  }
  for (const auto& island : result.islands) {
    std::printf("island %u:     best %" PRId64 ", %zu pool entries, %" PRIu64
                " inserts, %" PRIu64 " migrations in, %u blocks\n",
                island.island_id, island.best_energy, island.pool_evaluated,
                island.inserts, island.migrations_in, island.blocks);
  }
  if (result.migrations > 0 || result.migration_events > 0 ||
      result.controller_reassignments > 0) {
    std::printf("diverse:      %" PRIu64 " elites migrated over %" PRIu64
                " ring rounds, %" PRIu64 " controller reassignments\n",
                result.migrations, result.migration_events,
                result.controller_reassignments);
  }
  if (!result.failed_devices.empty()) {
    std::printf("degraded run: %zu of %u device(s) quarantined\n",
                result.failed_devices.size(), config.num_devices);
  }
  if (result.checkpoints_written > 0 || result.checkpoints_failed > 0) {
    std::printf("checkpoints:  %" PRIu64 " written, %" PRIu64
                " failed → %s\n",
                result.checkpoints_written, result.checkpoints_failed,
                config.checkpoint_path.c_str());
  }

  // Problem-aware decode.
  if (format == "gset") {
    std::printf("cut weight:   %" PRId64 "\n",
                absq::cut_weight(graph, result.best));
  } else if (format == "tsplib") {
    if (const auto tour = absq::decode_tour(tsp_qubo, result.best)) {
      std::printf("tour length:  %" PRId64 "\ntour:        ",
                  tsp.tour_length(*tour));
      for (const auto city : *tour) std::printf(" %u", city);
      std::printf("\n");
    } else {
      std::printf("tour:         best assignment is not a valid tour yet\n");
    }
  } else if (format == "dimacs") {
    std::printf("violated clauses: %zu of %zu\n",
                absq::count_violations(formula, result.best),
                formula.clauses.size());
  }

  if (cli.get_bool("print-trace")) {
    std::printf("improvement trace (s → energy):\n");
    for (const auto& [t, e] : result.best_trace) {
      std::printf("  %10.4f  %" PRId64 "\n", t, e);
    }
  }
  if (const std::string out = cli.get_string("out"); !out.empty()) {
    absq::write_solution_file(out, result.best, result.best_energy);
    std::printf("solution written to %s\n", out.c_str());
  }

  // Telemetry exports.
  if (!metrics_path.empty()) {
    std::ofstream prom(metrics_path, std::ios::trunc);
    ABSQ_CHECK(prom.good(), "cannot open '" << metrics_path << "'");
    prom << absq::obs::to_prometheus(registry->scrape());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream trace(trace_path, std::ios::trunc);
    ABSQ_CHECK(trace.good(), "cannot open '" << trace_path << "'");
    trace << absq::obs::chrome_trace_json(tracer->snapshot());
    std::printf("trace written to %s (%" PRIu64 " events, %" PRIu64
                " overwritten)\n",
                trace_path.c_str(), tracer->recorded(), tracer->dropped());
  }
  if (!report_path.empty()) {
    absq::RunReportMeta meta;
    meta.tool = "absq_solve";
    meta.instance = path;
    meta.seed = config.seed;
    meta.extra = {{"format", format},
                  {"devices", std::to_string(config.num_devices)},
                  {"blocks", std::to_string(config.device.block_limit)},
                  {"pool", std::to_string(config.pool_capacity)}};
    absq::write_run_report_file(report_path, meta, result,
                                     registry.get());
    std::printf("report written to %s\n", report_path.c_str());
  }
  if (result.cancelled) return 130;  // interrupted, shell convention
  return result.reached_target || !stop.target_energy.has_value() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const absq::CliUsageError&) {
    return absq::kUsageExitCode;  // parse already printed usage to stderr
  } catch (const std::exception& error) {
    std::fprintf(stderr, "absq_solve: %s\n", error.what());
    return 1;
  }
}
