// absq_serve — solver-as-a-service: a multi-tenant QUBO job server.
//
// Hosts a JobManager (bounded queue + a fleet of solver slots) behind the
// line-delimited JSON TCP protocol of docs/serving.md:
//
//   absq_serve --port 7777 --solvers 2 --max-queue 8
//   absq_serve --port 0 --checkpoint-dir ck/ --metrics serve.prom
//
// Prints `listening on 127.0.0.1:<port>` once ready (with --port 0 the
// kernel picks the port — scripts parse this line). Clients submit with
// absq_client or any tool that can write one JSON object per line.
//
// Shutdown: SIGTERM / SIGINT / the `shutdown` command all start a graceful
// drain — no new submissions, queued and running jobs finish (use
// --no-drain to cancel them instead), telemetry files are written, exit 0.
// A second signal kills the process immediately.
//
// Fault isolation: a job whose solver fails (a device past its watchdog
// restart budget, a bad resume file) becomes `failed`; the server and the
// other tenants live on.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>

#include "obs/http_exporter.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/job_manager.hpp"
#include "serve/job_server.hpp"
#include "serve/protocol.hpp"
#include "serve/status.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

namespace {

/// Signal handlers may only touch lock-free atomics; main polls this.
std::atomic<bool> g_signal{false};

extern "C" void handle_stop_signal(int signum) {
  g_signal.store(true);
  // A second signal means "now": restore the default disposition so the
  // next delivery terminates the process.
  std::signal(signum, SIG_DFL);
}

int run(int argc, char** argv) {
  absq::CliParser cli(
      "absq_serve — multi-tenant QUBO job server (line-delimited JSON over "
      "TCP; see docs/serving.md)");
  cli.add_flag("port", std::int64_t{7777},
               "TCP port on 127.0.0.1 (0 = ephemeral, printed at startup)");
  cli.add_flag("solvers", std::int64_t{1}, "jobs solving concurrently");
  cli.add_flag("max-queue", std::int64_t{64},
               "queued-job bound; submissions beyond it get queue_full");
  cli.add_flag("devices", std::int64_t{1}, "simulated GPUs per job");
  cli.add_flag("blocks", std::int64_t{8},
               "search blocks per device (0 = occupancy-derived)");
  cli.add_flag("threads", std::int64_t{1},
               "worker threads per device within each job");
  cli.add_flag("pool", std::int64_t{128}, "solution pool capacity per job");
  cli.add_flag("adaptive", false, "enable adaptive window switching");
  cli.add_flag("watchdog-grace", 0.0,
               "per-job device stall grace in seconds (0 = off)");
  cli.add_flag("max-restarts", std::int64_t{1},
               "per-job restart budget for failed devices");
  cli.add_flag("restart-backoff", 0.0,
               "seconds between a device failure and its restart");
  cli.add_flag("checkpoint-dir", std::string(""),
               "write per-job crash-safe checkpoints job-<id>.ck into this "
               "existing directory");
  cli.add_flag("checkpoint-interval", 30.0,
               "periodic checkpoint cadence in seconds");
  cli.add_flag("recover", false,
               "replay the job journal in --checkpoint-dir at startup: "
               "requeue never-started jobs, resume started ones from their "
               "checkpoints, re-mark finished ones");
  cli.add_flag("idle-timeout", 300.0,
               "close a client connection idle for this many seconds");
  cli.add_flag("drain", true,
               "on shutdown let queued+running jobs finish "
               "(--no-drain cancels them)");
  cli.add_flag("metrics", std::string(""),
               "write a Prometheus text scrape to this file at shutdown");
  cli.add_flag("report", std::string(""),
               "write a JSONL job-summary report to this file at shutdown");
  cli.add_flag("http-port", std::int64_t{-1},
               "serve GET /metrics /status /trace /healthz on this "
               "127.0.0.1 port while running (0 = ephemeral, -1 = off)");
  cli.add_flag("log-level", std::string("warn"),
               "structured JSONL log threshold: debug|info|warn|error|off");
  cli.add_flag("log-file", std::string(""),
               "append structured log lines to this file (default stderr)");
  if (!cli.parse(argc, argv)) return 0;

  ABSQ_CHECK(cli.positional().empty(),
             "absq_serve takes no positional arguments (see --help)");
  const std::int64_t port = cli.get_int("port");
  ABSQ_CHECK(port >= 0 && port <= 65535, "--port must be in [0, 65535]");
  const std::int64_t solvers = cli.get_int("solvers");
  ABSQ_CHECK(solvers >= 1, "--solvers must be at least 1");
  const std::int64_t max_queue = cli.get_int("max-queue");
  ABSQ_CHECK(max_queue >= 1, "--max-queue must be at least 1");
  const std::int64_t http_port = cli.get_int("http-port");
  ABSQ_CHECK(http_port >= -1 && http_port <= 65535,
             "--http-port must be in [0, 65535], or -1 for off");

  absq::obs::Logger::global().set_level(
      absq::obs::log_level_from_string(cli.get_string("log-level")));
  if (const std::string path = cli.get_string("log-file"); !path.empty()) {
    absq::obs::Logger::global().open_file(path);
  }

  // One registry for everything: manager-level job series plus every
  // per-job solver underneath share it, so one scrape covers the server.
  absq::obs::MetricsRegistry registry;
  // The trace ring only fills (and its per-iteration spans only cost)
  // when something can read it — i.e. when the HTTP surface is up.
  absq::obs::EventTracer tracer;
  absq::Stopwatch uptime;

  absq::serve::JobManagerConfig manager_config;
  manager_config.solver_slots = static_cast<std::size_t>(solvers);
  manager_config.max_queue = static_cast<std::size_t>(max_queue);
  manager_config.checkpoint_dir = cli.get_string("checkpoint-dir");
  manager_config.checkpoint_interval_seconds =
      cli.get_double("checkpoint-interval");
  manager_config.recover = cli.get_bool("recover");
  ABSQ_CHECK(!manager_config.recover || !manager_config.checkpoint_dir.empty(),
             "--recover needs --checkpoint-dir (the journal lives there)");
  manager_config.telemetry.metrics = &registry;
  manager_config.solver.num_devices =
      static_cast<std::uint32_t>(cli.get_int("devices"));
  manager_config.solver.device.block_limit =
      static_cast<std::uint32_t>(cli.get_int("blocks"));
  manager_config.solver.device.threads_per_device =
      static_cast<std::uint32_t>(cli.get_int("threads"));
  manager_config.solver.device.adaptive = cli.get_bool("adaptive");
  manager_config.solver.pool_capacity =
      static_cast<std::size_t>(cli.get_int("pool"));
  manager_config.solver.watchdog.stall_grace_seconds =
      cli.get_double("watchdog-grace");
  manager_config.solver.watchdog.max_restarts =
      static_cast<std::uint32_t>(cli.get_int("max-restarts"));
  manager_config.solver.watchdog.restart_backoff_seconds =
      cli.get_double("restart-backoff");
  manager_config.solver.telemetry.metrics = &registry;
  if (http_port >= 0) manager_config.solver.telemetry.tracer = &tracer;

  absq::serve::JobManager manager(manager_config);

  absq::serve::JobServerConfig server_config;
  server_config.port = static_cast<int>(port);
  server_config.idle_timeout_seconds = cli.get_double("idle-timeout");
  server_config.metrics = &registry;
  absq::serve::JobServer server(manager, server_config);
  server.start();

  std::unique_ptr<absq::obs::HttpExporter> http;
  if (http_port >= 0) {
    absq::obs::HttpExporterConfig http_config;
    http_config.port = static_cast<int>(http_port);
    http_config.metrics = &registry;
    http_config.tracer = &tracer;
    http_config.status = [&manager, &registry, &uptime] {
      return absq::serve::status_json(manager, &registry, uptime.seconds());
    };
    http = std::make_unique<absq::obs::HttpExporter>(std::move(http_config));
    http->start();
  }

  std::printf("absq_serve %s — %lld solver slot%s, queue bound %lld%s\n",
              absq::kVersion, static_cast<long long>(solvers),
              solvers == 1 ? "" : "s", static_cast<long long>(max_queue),
              manager_config.checkpoint_dir.empty() ? ""
                                                    : ", checkpoints on");
  if (manager_config.recover) {
    const absq::serve::RecoveryStats& recovered = manager.recovery_stats();
    // scripts/chaos_smoke.sh parses this line.
    std::printf(
        "recovery: resumed=%zu requeued=%zu expired=%zu lost=%zu "
        "terminal=%zu\n",
        recovered.resumed, recovered.requeued, recovered.expired,
        recovered.lost, recovered.terminal);
  }
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  if (http != nullptr) {
    std::printf("http on 127.0.0.1:%d\n", http->port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (!g_signal.load() && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const bool drain = cli.get_bool("drain");
  std::printf("draining — no new submissions%s\n",
              drain ? ", letting jobs finish" : ", cancelling jobs");
  std::fflush(stdout);
  server.stop();  // transport first: no requests race the drain below
  manager.shutdown(drain ? absq::serve::JobManager::Drain::kWait
                         : absq::serve::JobManager::Drain::kCancel);

  // Telemetry exports after the drain, so final job counts are in.
  if (const std::string path = cli.get_string("metrics"); !path.empty()) {
    std::ofstream out(path, std::ios::trunc);
    ABSQ_CHECK(out.good(), "cannot open '" << path << "'");
    out << absq::obs::to_prometheus(registry.scrape());
    std::printf("metrics written to %s\n", path.c_str());
  }
  if (const std::string path = cli.get_string("report"); !path.empty()) {
    std::ofstream out(path, std::ios::trunc);
    ABSQ_CHECK(out.good(), "cannot open '" << path << "'");
    absq::serve::Json meta = absq::serve::Json::object();
    meta.set("type", "meta").set("tool", "absq_serve");
    meta.set("solvers", solvers).set("max_queue", max_queue);
    meta.set("connections",
             static_cast<std::int64_t>(server.connections_accepted()));
    out << meta.dump() << '\n';
    for (const auto& status : manager.list()) {
      absq::serve::Json line = absq::serve::job_to_json(status);
      line.set("type", "job");
      out << line.dump() << '\n';
    }
    ABSQ_CHECK(out.good(), "write failed: '" << path << "'");
    std::printf("report written to %s\n", path.c_str());
  }
  std::printf("absq_serve: clean shutdown\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const absq::CliUsageError&) {
    return absq::kUsageExitCode;  // parse already printed usage to stderr
  } catch (const std::exception& error) {
    std::fprintf(stderr, "absq_serve: %s\n", error.what());
    return 1;
  }
}
