// absq_client — command-line client of an absq_serve process.
//
// The first positional argument picks the action:
//
//   absq_client submit instance.qubo --port 7777 --seconds 5 --wait
//   absq_client submit g.gset --format gset --target -11624 --name g1
//   absq_client status 7 --port 7777
//   absq_client wait 7 --timeout 30
//   absq_client result 7 --out best.sol
//   absq_client cancel 7
//   absq_client list | ping | metrics | shutdown
//
// submit reads the instance locally and ships it inline (the server needs
// no shared filesystem); --by-path sends the path instead for
// server-local reading. With --wait the client blocks until the job is
// terminal and prints the result.
//
// Exit codes: 0 success (job done / action accepted), 1 error, 2 usage,
// 3 the awaited job failed, 4 wait timed out, 130 the awaited job was
// cancelled.
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "qubo/io.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using absq::serve::JobId;
using absq::serve::JobState;
using absq::serve::JobStatus;
using absq::serve::Json;

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ABSQ_CHECK(in.good(), "cannot open '" << path << "' for reading");
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

void print_status(const JobStatus& status) {
  std::printf("job %" PRIu64 "%s%s%s: %s", status.id,
              status.name.empty() ? "" : " (", status.name.c_str(),
              status.name.empty() ? "" : ")",
              absq::serve::to_string(status.state));
  if (status.best_energy != absq::kUnevaluated) {
    std::printf(", best %" PRId64 "%s", status.best_energy,
                status.reached_target ? " (target reached)" : "");
  }
  if (status.state == JobState::kQueued) {
    std::printf(", waited %.1f s", status.queue_seconds);
  } else {
    std::printf(", ran %.1f s", status.run_seconds);
  }
  if (!status.error.empty()) std::printf(" — %s", status.error.c_str());
  std::printf("\n");
}

/// Fetches + prints the final result; returns the exit code for the
/// terminal state (0 done / 3 failed / 130 cancelled).
int report_result(absq::serve::Client& client, JobId id,
                  const std::string& out_path) {
  const Json reply = client.request([&] {
    Json request = Json::object();
    request.set("cmd", "result").set("id", id);
    return request;
  }());
  const JobStatus status = absq::serve::job_from_json(reply.at("job"));
  print_status(status);
  if (!reply.get_bool("ok", false)) {
    return status.state == JobState::kCancelled ? 130 : 3;
  }
  std::printf("energy:       %" PRId64 "\n", reply.at("energy").as_int());
  std::printf("flips:        %" PRId64 "  (%.3g solutions/s)\n",
              reply.get_int("total_flips", 0),
              reply.get_double("search_rate", 0.0));
  if (!out_path.empty()) {
    absq::write_solution_file(
        out_path,
        absq::BitVector::from_string(reply.at("solution").as_string()),
        reply.at("energy").as_int());
    std::printf("solution written to %s\n", out_path.c_str());
  }
  return status.state == JobState::kCancelled ? 130 : 0;
}

JobId id_argument(const absq::CliParser& cli) {
  ABSQ_CHECK(cli.positional().size() == 2,
             "expected a job id, e.g. `absq_client status 7` (see --help)");
  return static_cast<JobId>(std::stoull(cli.positional()[1]));
}

int run(int argc, char** argv) {
  absq::CliParser cli(
      "absq_client — talk to an absq_serve job server (first positional "
      "argument picks the action: submit | status | wait | result | cancel "
      "| list | ping | metrics | shutdown)");
  cli.add_flag("host", std::string("127.0.0.1"), "server address");
  cli.add_flag("port", std::int64_t{7777}, "server port");
  cli.add_flag("format", std::string("qubo"),
               "submit: instance format qubo | gset | tsplib | dimacs");
  cli.add_flag("seconds", 0.0, "submit: wall-clock limit (0 = none)");
  cli.add_flag("target", std::string(""),
               "submit: stop at this energy (empty = none)");
  cli.add_flag("max-flips", std::int64_t{0}, "submit: flip budget (0 = none)");
  cli.add_flag("seed", std::int64_t{1}, "submit: solver seed");
  cli.add_flag("priority", std::int64_t{0},
               "submit: higher runs first (FIFO within a level)");
  cli.add_flag("name", std::string(""), "submit: free-form job label");
  cli.add_flag("resume", std::string(""),
               "submit: server-local checkpoint file to warm-start from");
  cli.add_flag("idempotency-key", std::string(""),
               "submit: deduplication key — resubmitting the same key "
               "returns the original job instead of new work, and makes "
               "the submit safe to auto-retry");
  cli.add_flag("islands", std::int64_t{0},
               "submit: island pool count (0 = server default)");
  cli.add_flag("portfolio", std::string(""),
               "submit: comma-separated block algorithms "
               "(min-delta,sa,multistart; empty = server default)");
  cli.add_flag("migration-interval", std::int64_t{0},
               "submit: GA rounds between elite migrations (0 = default)");
  cli.add_flag("deadline", 0.0,
               "submit: TTL in seconds; past it the job ends in the "
               "terminal state `deadline` (0 = none)");
  cli.add_flag("by-path", false,
               "submit: send the instance path for server-local reading "
               "instead of inlining the file contents");
  cli.add_flag("wait", false, "submit: block until the job is terminal");
  cli.add_flag("timeout", 0.0, "wait bound in seconds (0 = forever)");
  cli.add_flag("out", std::string(""),
               "result/wait: write the best solution to this file");
  if (!cli.parse(argc, argv)) return 0;

  ABSQ_CHECK(!cli.positional().empty(),
             "expected an action: submit | status | wait | result | cancel "
             "| list | ping | metrics | shutdown (see --help)");
  const std::string action = cli.positional()[0];

  absq::serve::Client client(cli.get_string("host"),
                             static_cast<int>(cli.get_int("port")));

  if (action == "ping") {
    const bool alive = client.ping();
    std::printf("%s\n", alive ? "pong" : "no reply");
    return alive ? 0 : 1;
  }
  if (action == "list") {
    const Json reply = client.list();
    const Json& jobs = reply.at("jobs");
    std::printf("%zu job(s), %" PRId64 " queued, %" PRId64 " running\n",
                jobs.size(), reply.get_int("queue_depth", 0),
                reply.get_int("running", 0));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      print_status(absq::serve::job_from_json(jobs.at(i)));
    }
    return 0;
  }
  if (action == "metrics") {
    std::printf("%s", client.metrics().c_str());
    return 0;
  }
  if (action == "shutdown") {
    client.shutdown_server();
    std::printf("server draining\n");
    return 0;
  }
  if (action == "status") {
    print_status(client.status(id_argument(cli)));
    return 0;
  }
  if (action == "cancel") {
    const JobId id = id_argument(cli);
    const bool took_effect = client.cancel(id);
    print_status(client.status(id));
    std::printf("%s\n", took_effect ? "cancel requested"
                                    : "job was already terminal");
    return 0;
  }
  if (action == "wait") {
    const JobId id = id_argument(cli);
    const JobStatus status = client.wait(id, cli.get_double("timeout"));
    if (!absq::serve::is_terminal(status.state)) {
      print_status(status);
      std::fprintf(stderr, "absq_client: wait timed out\n");
      return 4;
    }
    return report_result(client, id, cli.get_string("out"));
  }
  if (action == "result") {
    return report_result(client, id_argument(cli), cli.get_string("out"));
  }
  ABSQ_CHECK(action == "submit", "unknown action '" << action
                                                    << "' (see --help)");

  ABSQ_CHECK(cli.positional().size() == 2,
             "submit expects exactly one instance file (see --help)");
  const std::string path = cli.positional()[1];
  Json request = Json::object();
  if (cli.get_bool("by-path")) {
    request.set("file", path);
  } else {
    request.set("problem", slurp_file(path));
  }
  request.set("format", cli.get_string("format"));
  if (const double seconds = cli.get_double("seconds"); seconds > 0.0) {
    request.set("seconds", seconds);
  }
  if (const std::string target = cli.get_string("target"); !target.empty()) {
    request.set("target", static_cast<std::int64_t>(std::stoll(target)));
  }
  if (const std::int64_t flips = cli.get_int("max-flips"); flips > 0) {
    request.set("max_flips", flips);
  }
  request.set("seed", cli.get_int("seed"));
  request.set("priority", cli.get_int("priority"));
  if (const std::string name = cli.get_string("name"); !name.empty()) {
    request.set("name", name);
  }
  if (const std::string resume = cli.get_string("resume"); !resume.empty()) {
    request.set("resume_from", resume);
  }
  if (const std::string key = cli.get_string("idempotency-key");
      !key.empty()) {
    request.set("idempotency_key", key);
  }
  if (const double deadline = cli.get_double("deadline"); deadline > 0.0) {
    request.set("deadline_seconds", deadline);
  }
  if (const std::int64_t islands = cli.get_int("islands"); islands > 0) {
    request.set("islands", islands);
  }
  if (const std::string portfolio = cli.get_string("portfolio");
      !portfolio.empty()) {
    request.set("portfolio", portfolio);
  }
  if (const std::int64_t interval = cli.get_int("migration-interval");
      interval > 0) {
    request.set("migration_interval", interval);
  }

  const absq::serve::SubmitOutcome outcome =
      client.submit_full(std::move(request));
  const JobId id = outcome.id;
  // chaos_smoke.sh parses the "(deduplicated)" marker to assert that
  // resubmitting an in-flight key returned the original job.
  std::printf("submitted job %" PRIu64 "%s\n", id,
              outcome.deduplicated ? " (deduplicated)" : "");
  if (!cli.get_bool("wait")) return 0;

  const JobStatus status = client.wait(id, cli.get_double("timeout"));
  if (!absq::serve::is_terminal(status.state)) {
    print_status(status);
    std::fprintf(stderr, "absq_client: wait timed out\n");
    return 4;
  }
  return report_result(client, id, cli.get_string("out"));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const absq::CliUsageError&) {
    return absq::kUsageExitCode;  // parse already printed usage to stderr
  } catch (const std::exception& error) {
    std::fprintf(stderr, "absq_client: %s\n", error.what());
    return 1;
  }
}
