// Max-Cut demo: solve a G-set-style instance (generated stand-in or a real
// G-set file) and print the best cut found over time.
//
//   ./examples/maxcut_gset                       # G1 stand-in, 3 s
//   ./examples/maxcut_gset --instance G39        # harder ±1 planar family
//   ./examples/maxcut_gset --file my_graph.gset  # real G-set format file
//
// Demonstrates the problems/maxcut pipeline: graph → Eq. (17) QUBO → ABS →
// cut decoding, with the E(X) = −cut(X) identity checked on the way out.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "abs/solver.hpp"
#include "problems/maxcut.hpp"
#include "qubo/energy.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  absq::CliParser cli("maxcut_gset — Max-Cut via ABS on G-set-style graphs");
  cli.add_flag("instance", std::string("G1"),
               "catalog instance to generate (G1 G6 G22 G27 G35 G39 G55 G70)");
  cli.add_flag("file", std::string(""), "load a G-set format file instead");
  cli.add_flag("seconds", 3.0, "wall-clock budget");
  cli.add_flag("blocks", std::int64_t{8}, "search blocks per device");
  cli.add_flag("seed", std::int64_t{2020}, "generator & solver seed");
  if (!cli.parse(argc, argv)) return 0;

  // Obtain the graph.
  absq::WeightedGraph graph;
  std::string label;
  if (const std::string path = cli.get_string("file"); !path.empty()) {
    graph = absq::read_gset_file(path);
    label = path;
  } else {
    const std::string name = cli.get_string("instance");
    const absq::GsetSpec* spec = nullptr;
    for (const auto& row : absq::gset_catalog()) {
      if (row.name == name) spec = &row;
    }
    ABSQ_CHECK(spec != nullptr, "unknown catalog instance '" << name << "'");
    graph = absq::generate_gset_instance(
        *spec, static_cast<std::uint64_t>(cli.get_int("seed")));
    label = name + " stand-in";
  }
  std::printf("graph: %s — %u vertices, %zu edges\n", label.c_str(),
              graph.vertex_count(), graph.edge_count());

  // Convert (Eq. 17) and solve.
  const absq::WeightMatrix w = absq::maxcut_to_qubo(graph);
  absq::AbsConfig config;
  config.device.block_limit =
      static_cast<std::uint32_t>(cli.get_int("blocks"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  absq::AbsSolver solver(w, config);
  absq::StopCriteria stop;
  stop.time_limit_seconds = cli.get_double("seconds");
  const absq::AbsResult result = solver.run(stop);

  // Decode: cut weight == −energy, checked against the edge list.
  const std::int64_t cut = absq::cut_weight(graph, result.best);
  ABSQ_CHECK(cut == -result.best_energy, "energy/cut identity violated");
  std::printf("best cut:    %" PRId64 "  (energy %" PRId64 ")\n", cut,
              result.best_energy);
  std::printf("search rate: %.3g solutions/s over %.2f s\n",
              result.search_rate, result.seconds);
  std::printf("improvement trace (s → cut):\n");
  for (const auto& [t, e] : result.best_trace) {
    std::printf("  %8.3f  %" PRId64 "\n", t, -e);
  }
  return 0;
}
