// Extensibility demo: the paper's Section 5 suggests blocks that "perform
// different algorithms" — this example plugs a custom SelectionPolicy into
// the proposed O(1)-efficiency local search and races it against the
// built-in policies on the same instance.
//
//   ./examples/custom_policy [--bits 256] [--steps 20000]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "search/algorithms.hpp"
#include "problems/random.hpp"
#include "util/cli.hpp"

namespace {

/// A softmax-ish stochastic policy: flips a uniformly random bit from the
/// best `k` candidates of a rotating window — a randomized middle ground
/// between the paper's deterministic window policy and pure random flips.
class NoisyWindowPolicy final : public absq::SelectionPolicy {
 public:
  NoisyWindowPolicy(absq::BitIndex window, absq::BitIndex top_k)
      : window_(window), top_k_(top_k) {}

  absq::BitIndex select(const absq::DeltaState& state,
                        absq::Rng& rng) override {
    const absq::BitIndex n = state.size();
    const absq::BitIndex len = window_ < n ? window_ : n;
    // Collect the window, then partially select the best top_k by Δ.
    candidates_.clear();
    for (absq::BitIndex step = 0; step < len; ++step) {
      candidates_.push_back((offset_ + step) % n);
    }
    offset_ = (offset_ + len) % n;
    const auto by_delta = [&state](absq::BitIndex a, absq::BitIndex b) {
      return state.delta(a) < state.delta(b);
    };
    const absq::BitIndex k = top_k_ < len ? top_k_ : len;
    std::partial_sort(candidates_.begin(), candidates_.begin() + k,
                      candidates_.end(), by_delta);
    return candidates_[rng.below(k)];
  }

  void reset() override { offset_ = 0; }

  [[nodiscard]] std::unique_ptr<absq::SelectionPolicy> clone() const override {
    return std::make_unique<NoisyWindowPolicy>(window_, top_k_);
  }

 private:
  absq::BitIndex window_;
  absq::BitIndex top_k_;
  absq::BitIndex offset_ = 0;
  std::vector<absq::BitIndex> candidates_;
};

}  // namespace

int main(int argc, char** argv) {
  absq::CliParser cli("custom_policy — plug your own bit-selection policy "
                      "into the O(1)-efficiency search");
  cli.add_flag("bits", std::int64_t{256}, "problem size");
  cli.add_flag("steps", std::int64_t{20000}, "forced flips per policy");
  cli.add_flag("seed", std::int64_t{3}, "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<absq::BitIndex>(cli.get_int("bits"));
  const auto steps = static_cast<std::uint64_t>(cli.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const absq::WeightMatrix w = absq::random_qubo(n, seed);

  struct Entry {
    const char* name;
    std::unique_ptr<absq::SelectionPolicy> policy;
  };
  Entry entries[] = {
      {"window l=16 (paper)", std::make_unique<absq::WindowMinDeltaPolicy>(16)},
      {"greedy l=n", std::make_unique<absq::GreedyMinDeltaPolicy>()},
      {"random l=1", std::make_unique<absq::RandomBitPolicy>()},
      {"noisy window (custom)", std::make_unique<NoisyWindowPolicy>(32, 4)},
  };

  std::printf("%-24s %14s %12s\n", "policy", "best energy", "efficiency");
  for (auto& entry : entries) {
    absq::Rng rng(seed);
    absq::ProposedSearchOptions opts;
    opts.steps = steps;
    opts.policy = entry.policy.get();
    const auto outcome = absq::proposed_local_search(
        w, absq::BitVector::random(n, rng), opts, rng);
    std::printf("%-24s %14" PRId64 " %12.3f\n", entry.name,
                outcome.best_energy, outcome.stats.efficiency());
  }
  std::printf("\nefficiency = matrix reads per evaluated solution — the "
              "O(1) guarantee holds for every policy.\n");
  return 0;
}
