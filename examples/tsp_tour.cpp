// TSP demo: encode a traveling-salesman instance as a (c−1)²-bit QUBO,
// solve it with ABS, and decode the best assignment back into a tour.
//
//   ./examples/tsp_tour                       # 12-city synthetic instance
//   ./examples/tsp_tour --cities 29           # bayg29-sized stand-in
//   ./examples/tsp_tour --file some.tsp       # TSPLIB file (EUC_2D/GEO/…)
//
// TSP is the paper's *hard* benchmark family: valid tours are Hamming
// distance ≥ 4 apart, so plain bit-flip searches stall without the GA +
// straight-search machinery this solver runs.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "abs/solver.hpp"
#include "problems/tsp.hpp"
#include "qubo/energy.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  absq::CliParser cli("tsp_tour — TSP as QUBO via ABS");
  cli.add_flag("cities", std::int64_t{12}, "synthetic instance size");
  cli.add_flag("file", std::string(""), "TSPLIB .tsp file to load instead");
  cli.add_flag("seconds", 5.0, "wall-clock budget");
  cli.add_flag("seed", std::int64_t{7}, "generator & solver seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const absq::TspInstance tsp =
      cli.get_string("file").empty()
          ? absq::random_euclidean_tsp(
                "synthetic",
                static_cast<absq::BitIndex>(cli.get_int("cities")), 250, seed)
          : absq::read_tsplib_file(cli.get_string("file"));
  std::printf("instance: %s — %u cities, max distance %d\n",
              tsp.name().c_str(), tsp.cities(), tsp.max_distance());

  // Reference tour from the classical side, for context.
  const std::int64_t reference =
      tsp.cities() <= 16 ? absq::exact_tsp_length(tsp)
                         : absq::two_opt_tsp_length(tsp, 20, seed);
  std::printf("reference length (%s): %" PRId64 "\n",
              tsp.cities() <= 16 ? "exact" : "2-opt", reference);

  // Encode and solve. Note penalty A = 2·max_distance, the paper's choice.
  const absq::TspQubo qubo = absq::tsp_to_qubo(tsp);
  std::printf("QUBO: %u bits, penalty A = %" PRId64 "\n", qubo.w.size(),
              qubo.penalty);

  absq::AbsConfig config;
  config.device.block_limit = 8;
  config.seed = seed;
  // Mutating 2% of bits rarely preserves tour validity; crossover of two
  // valid-ish parents works better on permutation QUBOs.
  config.ga.crossover_prob = 0.7;
  absq::AbsSolver solver(qubo.w, config);
  absq::StopCriteria stop;
  stop.time_limit_seconds = cli.get_double("seconds");
  stop.target_energy = qubo.energy_for_length(reference);
  const absq::AbsResult result = solver.run(stop);

  const auto tour = absq::decode_tour(qubo, result.best);
  if (!tour.has_value()) {
    std::printf("best assignment (energy %" PRId64
                ") violates tour constraints — raise --seconds\n",
                result.best_energy);
    return 1;
  }
  const std::int64_t length = tsp.tour_length(*tour);
  ABSQ_CHECK(qubo.energy_for_length(length) == result.best_energy,
             "energy/length identity violated");
  std::printf("found tour of length %" PRId64 " (%.1f%% over reference):\n ",
              length,
              100.0 * (static_cast<double>(length - reference) /
                       static_cast<double>(reference)));
  for (const auto city : *tour) std::printf(" %u", city);
  std::printf("\nsearch rate: %.3g solutions/s\n", result.search_rate);
  return 0;
}
