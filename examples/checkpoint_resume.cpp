// Checkpoint/resume demo: snapshot the GA population mid-run, then start a
// brand-new runner warm-started from the saved pool and compare it against
// a cold restart with the same budget.
//
//   ./examples/checkpoint_resume [--bits 512] [--rounds 40]
//
// Uses the deterministic SyncAbsRunner so the printout is reproducible.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>

#include "abs/sync_runner.hpp"
#include "ga/pool_io.hpp"
#include "problems/random.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  absq::CliParser cli("checkpoint_resume — snapshot and resume a run");
  cli.add_flag("bits", std::int64_t{512}, "instance size");
  cli.add_flag("rounds", std::int64_t{40}, "rounds per phase");
  cli.add_flag("seed", std::int64_t{9}, "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<absq::BitIndex>(cli.get_int("bits"));
  const auto rounds = static_cast<std::uint64_t>(cli.get_int("rounds"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const absq::WeightMatrix w = absq::random_qubo(n, seed);

  absq::AbsConfig config;
  config.device.block_limit = 8;
  config.pool_capacity = 32;
  config.seed = seed;

  // Phase 1: run, then checkpoint the population to disk.
  const std::string checkpoint = "/tmp/absq_checkpoint.pool";
  absq::Energy phase1_best = 0;
  {
    absq::SyncAbsRunner runner(w, config);
    const absq::AbsResult result = runner.run_rounds(rounds);
    phase1_best = result.best_energy;
    absq::write_pool_file(checkpoint, runner.pool());
    std::printf("phase 1: best %" PRId64 " after %" PRIu64
                " rounds; pool saved to %s\n",
                result.best_energy, rounds, checkpoint.c_str());
  }

  // Phase 2a: cold restart (fresh random pool), same budget.
  absq::AbsConfig cold = config;
  cold.seed = seed + 1;
  absq::SyncAbsRunner cold_runner(w, cold);
  const absq::Energy cold_best = cold_runner.run_rounds(rounds).best_energy;

  // Phase 2b: warm restart from the checkpoint, same budget and seed.
  absq::AbsConfig warm = cold;
  warm.warm_start = std::make_shared<absq::SolutionPool>(
      absq::read_pool_file(checkpoint));
  absq::SyncAbsRunner warm_runner(w, warm);
  const absq::Energy warm_best = warm_runner.run_rounds(rounds).best_energy;

  std::printf("phase 2 (cold restart): best %" PRId64 "\n", cold_best);
  std::printf("phase 2 (warm restart): best %" PRId64 "\n", warm_best);
  std::printf("warm start kept the incumbent: %s\n",
              warm_best <= phase1_best ? "yes" : "no");
  std::printf("warm start %s the cold restart\n",
              warm_best < cold_best   ? "beat"
              : warm_best == cold_best ? "tied"
                                       : "lost to");
  return 0;
}
