// Quickstart: generate a random QUBO instance, run the Adaptive Bulk Search
// solver for a fixed wall-clock budget, and print what it found.
//
//   ./examples/quickstart [--bits 512] [--seconds 2.0] [--devices 1]
//
// This is the smallest end-to-end use of the public API:
//   problem construction → AbsConfig → AbsSolver::run → result inspection.
#include <cinttypes>
#include <cstdio>

#include "abs/solver.hpp"
#include "problems/random.hpp"
#include "qubo/energy.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  absq::CliParser cli(
      "quickstart — solve a random 16-bit-weight QUBO with the ABS solver");
  cli.add_flag("bits", std::int64_t{512}, "problem size n");
  cli.add_flag("seconds", 2.0, "wall-clock budget");
  cli.add_flag("devices", std::int64_t{1}, "simulated GPUs");
  cli.add_flag("seed", std::int64_t{1}, "instance & solver seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<absq::BitIndex>(cli.get_int("bits"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // 1. Build an instance: dense symmetric matrix, weights in [−32768, 32767].
  const absq::WeightMatrix w = absq::random_qubo(n, seed);
  std::printf("instance: %u bits, %zu nonzeros, %.1f MiB\n", w.size(),
              w.nonzeros(), static_cast<double>(w.bytes()) / (1 << 20));

  // 2. Configure the solver: a few blocks per device is plenty on a CPU.
  absq::AbsConfig config;
  config.num_devices = static_cast<std::uint32_t>(cli.get_int("devices"));
  config.device.block_limit = 8;
  config.pool_capacity = 64;
  config.seed = seed;

  // 3. Run with a time budget.
  absq::AbsSolver solver(w, config);
  absq::StopCriteria stop;
  stop.time_limit_seconds = cli.get_double("seconds");
  const absq::AbsResult result = solver.run(stop);

  // 4. Inspect. Energies reported by the solver are exact — verify anyway.
  std::printf("best energy:   %" PRId64 "\n", result.best_energy);
  std::printf("verified:      %" PRId64 "\n",
              absq::full_energy(w, result.best));
  std::printf("flips:         %" PRIu64 "\n", result.total_flips);
  std::printf("evaluated:     %" PRIu64 " solutions\n",
              result.evaluated_solutions);
  std::printf("search rate:   %.3g solutions/s\n", result.search_rate);
  std::printf("pool inserts:  %" PRIu64 " of %" PRIu64 " reports\n",
              result.reports_inserted, result.reports_received);
  return 0;
}
