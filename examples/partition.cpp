// Number-partitioning demo: split a set of integers into two halves with
// minimal sum difference — one of the Karp-problem QUBO mappings the paper
// cites as motivation.
//
//   ./examples/partition [--count 25] [--max-value 15] [--seconds 2]
//
// Also shows the QUBO ↔ Ising equivalence on a real problem: the same
// instance is converted to an Ising model and the best solution's
// Hamiltonian is checked against H = 4·E.
#include <cinttypes>
#include <cstdio>

#include "abs/solver.hpp"
#include "problems/partition.hpp"
#include "qubo/ising.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  absq::CliParser cli("partition — number partitioning as QUBO via ABS");
  cli.add_flag("count", std::int64_t{25}, "how many numbers");
  cli.add_flag("max-value", std::int64_t{15}, "numbers drawn from [1, max]");
  cli.add_flag("seconds", 2.0, "wall-clock budget");
  cli.add_flag("seed", std::int64_t{11}, "generator & solver seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto numbers = absq::random_partition_numbers(
      static_cast<std::size_t>(cli.get_int("count")),
      cli.get_int("max-value"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  std::int64_t total = 0;
  std::printf("numbers:");
  for (const auto a : numbers) {
    std::printf(" %" PRId64, a);
    total += a;
  }
  std::printf("\ntotal: %" PRId64 " (%s split possible)\n", total,
              total % 2 == 0 ? "perfect" : "off-by-one");

  const absq::PartitionQubo qubo = absq::partition_to_qubo(numbers);
  absq::AbsConfig config;
  config.device.block_limit = 4;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  absq::AbsSolver solver(qubo.w, config);
  absq::StopCriteria stop;
  stop.time_limit_seconds = cli.get_double("seconds");
  stop.target_energy = qubo.energy_for_difference(total % 2);
  const absq::AbsResult result = solver.run(stop);

  const std::int64_t diff = absq::partition_difference(numbers, result.best);
  ABSQ_CHECK(qubo.energy_for_difference(diff) == result.best_energy,
             "energy/difference identity violated");
  std::printf("best split difference: %" PRId64 "%s\n", diff,
              diff == total % 2 ? " (optimal)" : "");
  std::printf("set A:");
  for (std::size_t i = 0; i < numbers.size(); ++i) {
    if (result.best.get(static_cast<absq::BitIndex>(i)) != 0) {
      std::printf(" %" PRId64, numbers[i]);
    }
  }
  std::printf("\nset B:");
  for (std::size_t i = 0; i < numbers.size(); ++i) {
    if (result.best.get(static_cast<absq::BitIndex>(i)) == 0) {
      std::printf(" %" PRId64, numbers[i]);
    }
  }
  std::printf("\n");

  // Cross-check through the Ising view: H(S) = 4·E(X) exactly.
  const absq::IsingModel ising = absq::IsingModel::from_qubo(qubo.w);
  const auto spins = absq::IsingModel::spins_from_bits(result.best);
  ABSQ_CHECK(ising.hamiltonian(spins) == 4 * result.best_energy,
             "QUBO/Ising equivalence violated");
  std::printf("Ising check: H(S) = 4·E(X) = %" PRId64 " ✓\n",
              ising.hamiltonian(spins));
  return 0;
}
