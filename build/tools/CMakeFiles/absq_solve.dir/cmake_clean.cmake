file(REMOVE_RECURSE
  "CMakeFiles/absq_solve.dir/absq_solve.cpp.o"
  "CMakeFiles/absq_solve.dir/absq_solve.cpp.o.d"
  "absq_solve"
  "absq_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absq_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
