# Empty compiler generated dependencies file for absq_solve.
# This may be replaced when dependencies are built.
