file(REMOVE_RECURSE
  "CMakeFiles/absq_info.dir/absq_info.cpp.o"
  "CMakeFiles/absq_info.dir/absq_info.cpp.o.d"
  "absq_info"
  "absq_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absq_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
