# Empty compiler generated dependencies file for absq_info.
# This may be replaced when dependencies are built.
