# Empty compiler generated dependencies file for absq_gen.
# This may be replaced when dependencies are built.
