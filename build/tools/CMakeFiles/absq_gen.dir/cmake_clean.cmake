file(REMOVE_RECURSE
  "CMakeFiles/absq_gen.dir/absq_gen.cpp.o"
  "CMakeFiles/absq_gen.dir/absq_gen.cpp.o.d"
  "absq_gen"
  "absq_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absq_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
