file(REMOVE_RECURSE
  "../bench/bench_table1b_tsp"
  "../bench/bench_table1b_tsp.pdb"
  "CMakeFiles/bench_table1b_tsp.dir/bench_table1b_tsp.cpp.o"
  "CMakeFiles/bench_table1b_tsp.dir/bench_table1b_tsp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1b_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
