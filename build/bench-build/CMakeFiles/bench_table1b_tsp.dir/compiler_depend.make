# Empty compiler generated dependencies file for bench_table1b_tsp.
# This may be replaced when dependencies are built.
