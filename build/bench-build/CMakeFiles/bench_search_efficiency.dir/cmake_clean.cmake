file(REMOVE_RECURSE
  "../bench/bench_search_efficiency"
  "../bench/bench_search_efficiency.pdb"
  "CMakeFiles/bench_search_efficiency.dir/bench_search_efficiency.cpp.o"
  "CMakeFiles/bench_search_efficiency.dir/bench_search_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
