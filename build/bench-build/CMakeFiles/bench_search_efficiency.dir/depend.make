# Empty dependencies file for bench_search_efficiency.
# This may be replaced when dependencies are built.
