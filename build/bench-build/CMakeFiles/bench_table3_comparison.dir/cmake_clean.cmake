file(REMOVE_RECURSE
  "../bench/bench_table3_comparison"
  "../bench/bench_table3_comparison.pdb"
  "CMakeFiles/bench_table3_comparison.dir/bench_table3_comparison.cpp.o"
  "CMakeFiles/bench_table3_comparison.dir/bench_table3_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
