# Empty compiler generated dependencies file for bench_table1a_maxcut.
# This may be replaced when dependencies are built.
