file(REMOVE_RECURSE
  "../bench/bench_table1a_maxcut"
  "../bench/bench_table1a_maxcut.pdb"
  "CMakeFiles/bench_table1a_maxcut.dir/bench_table1a_maxcut.cpp.o"
  "CMakeFiles/bench_table1a_maxcut.dir/bench_table1a_maxcut.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1a_maxcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
