# Empty compiler generated dependencies file for bench_table1c_random.
# This may be replaced when dependencies are built.
