file(REMOVE_RECURSE
  "../bench/bench_table1c_random"
  "../bench/bench_table1c_random.pdb"
  "CMakeFiles/bench_table1c_random.dir/bench_table1c_random.cpp.o"
  "CMakeFiles/bench_table1c_random.dir/bench_table1c_random.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1c_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
