file(REMOVE_RECURSE
  "../bench/bench_ablation_ga"
  "../bench/bench_ablation_ga.pdb"
  "CMakeFiles/bench_ablation_ga.dir/bench_ablation_ga.cpp.o"
  "CMakeFiles/bench_ablation_ga.dir/bench_ablation_ga.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
