# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--bits" "128" "--seconds" "0.3")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "90" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_maxcut "/root/repo/build/examples/maxcut_gset" "--instance" "G1" "--seconds" "0.3")
set_tests_properties(example_maxcut PROPERTIES  TIMEOUT "90" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tsp "/root/repo/build/examples/tsp_tour" "--cities" "7" "--seconds" "2")
set_tests_properties(example_tsp PROPERTIES  TIMEOUT "90" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partition "/root/repo/build/examples/partition" "--count" "12" "--seconds" "0.5")
set_tests_properties(example_partition PROPERTIES  TIMEOUT "90" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_policy "/root/repo/build/examples/custom_policy" "--bits" "64" "--steps" "2000")
set_tests_properties(example_custom_policy PROPERTIES  TIMEOUT "90" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_checkpoint_resume "/root/repo/build/examples/checkpoint_resume" "--bits" "128" "--rounds" "10")
set_tests_properties(example_checkpoint_resume PROPERTIES  TIMEOUT "90" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
