file(REMOVE_RECURSE
  "CMakeFiles/tsp_tour.dir/tsp_tour.cpp.o"
  "CMakeFiles/tsp_tour.dir/tsp_tour.cpp.o.d"
  "tsp_tour"
  "tsp_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsp_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
