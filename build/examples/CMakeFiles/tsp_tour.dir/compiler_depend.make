# Empty compiler generated dependencies file for tsp_tour.
# This may be replaced when dependencies are built.
