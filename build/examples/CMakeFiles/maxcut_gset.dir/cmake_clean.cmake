file(REMOVE_RECURSE
  "CMakeFiles/maxcut_gset.dir/maxcut_gset.cpp.o"
  "CMakeFiles/maxcut_gset.dir/maxcut_gset.cpp.o.d"
  "maxcut_gset"
  "maxcut_gset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxcut_gset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
