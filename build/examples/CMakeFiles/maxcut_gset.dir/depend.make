# Empty dependencies file for maxcut_gset.
# This may be replaced when dependencies are built.
