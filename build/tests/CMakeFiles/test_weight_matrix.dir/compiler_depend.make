# Empty compiler generated dependencies file for test_weight_matrix.
# This may be replaced when dependencies are built.
