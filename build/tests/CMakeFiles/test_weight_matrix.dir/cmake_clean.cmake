file(REMOVE_RECURSE
  "CMakeFiles/test_weight_matrix.dir/test_weight_matrix.cpp.o"
  "CMakeFiles/test_weight_matrix.dir/test_weight_matrix.cpp.o.d"
  "test_weight_matrix"
  "test_weight_matrix.pdb"
  "test_weight_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weight_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
