file(REMOVE_RECURSE
  "CMakeFiles/test_solution_pool.dir/test_solution_pool.cpp.o"
  "CMakeFiles/test_solution_pool.dir/test_solution_pool.cpp.o.d"
  "test_solution_pool"
  "test_solution_pool.pdb"
  "test_solution_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solution_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
