# Empty dependencies file for test_solution_pool.
# This may be replaced when dependencies are built.
