file(REMOVE_RECURSE
  "CMakeFiles/test_sync_runner.dir/test_sync_runner.cpp.o"
  "CMakeFiles/test_sync_runner.dir/test_sync_runner.cpp.o.d"
  "test_sync_runner"
  "test_sync_runner.pdb"
  "test_sync_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
