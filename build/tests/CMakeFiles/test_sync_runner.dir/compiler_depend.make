# Empty compiler generated dependencies file for test_sync_runner.
# This may be replaced when dependencies are built.
