# Empty dependencies file for test_vertex_cover.
# This may be replaced when dependencies are built.
