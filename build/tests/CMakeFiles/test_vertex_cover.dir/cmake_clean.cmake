file(REMOVE_RECURSE
  "CMakeFiles/test_vertex_cover.dir/test_vertex_cover.cpp.o"
  "CMakeFiles/test_vertex_cover.dir/test_vertex_cover.cpp.o.d"
  "test_vertex_cover"
  "test_vertex_cover.pdb"
  "test_vertex_cover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vertex_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
