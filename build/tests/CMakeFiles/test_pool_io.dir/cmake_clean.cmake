file(REMOVE_RECURSE
  "CMakeFiles/test_pool_io.dir/test_pool_io.cpp.o"
  "CMakeFiles/test_pool_io.dir/test_pool_io.cpp.o.d"
  "test_pool_io"
  "test_pool_io.pdb"
  "test_pool_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
