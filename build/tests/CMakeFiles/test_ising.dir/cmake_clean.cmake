file(REMOVE_RECURSE
  "CMakeFiles/test_ising.dir/test_ising.cpp.o"
  "CMakeFiles/test_ising.dir/test_ising.cpp.o.d"
  "test_ising"
  "test_ising.pdb"
  "test_ising[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
