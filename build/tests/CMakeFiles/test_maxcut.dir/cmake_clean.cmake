file(REMOVE_RECURSE
  "CMakeFiles/test_maxcut.dir/test_maxcut.cpp.o"
  "CMakeFiles/test_maxcut.dir/test_maxcut.cpp.o.d"
  "test_maxcut"
  "test_maxcut.pdb"
  "test_maxcut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
