file(REMOVE_RECURSE
  "CMakeFiles/test_straight.dir/test_straight.cpp.o"
  "CMakeFiles/test_straight.dir/test_straight.cpp.o.d"
  "test_straight"
  "test_straight.pdb"
  "test_straight[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_straight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
