# Empty dependencies file for test_straight.
# This may be replaced when dependencies are built.
