file(REMOVE_RECURSE
  "CMakeFiles/test_search_block.dir/test_search_block.cpp.o"
  "CMakeFiles/test_search_block.dir/test_search_block.cpp.o.d"
  "test_search_block"
  "test_search_block.pdb"
  "test_search_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
