# Empty dependencies file for test_search_block.
# This may be replaced when dependencies are built.
