file(REMOVE_RECURSE
  "CMakeFiles/test_delta_state.dir/test_delta_state.cpp.o"
  "CMakeFiles/test_delta_state.dir/test_delta_state.cpp.o.d"
  "test_delta_state"
  "test_delta_state.pdb"
  "test_delta_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
