# Empty compiler generated dependencies file for test_tsp.
# This may be replaced when dependencies are built.
