file(REMOVE_RECURSE
  "CMakeFiles/test_tsp.dir/test_tsp.cpp.o"
  "CMakeFiles/test_tsp.dir/test_tsp.cpp.o.d"
  "test_tsp"
  "test_tsp.pdb"
  "test_tsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
