
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abs/device.cpp" "src/CMakeFiles/absqubo.dir/abs/device.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/abs/device.cpp.o.d"
  "/root/repo/src/abs/search_block.cpp" "src/CMakeFiles/absqubo.dir/abs/search_block.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/abs/search_block.cpp.o.d"
  "/root/repo/src/abs/solver.cpp" "src/CMakeFiles/absqubo.dir/abs/solver.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/abs/solver.cpp.o.d"
  "/root/repo/src/abs/sync_runner.cpp" "src/CMakeFiles/absqubo.dir/abs/sync_runner.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/abs/sync_runner.cpp.o.d"
  "/root/repo/src/baselines/solvers.cpp" "src/CMakeFiles/absqubo.dir/baselines/solvers.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/baselines/solvers.cpp.o.d"
  "/root/repo/src/ga/operators.cpp" "src/CMakeFiles/absqubo.dir/ga/operators.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/ga/operators.cpp.o.d"
  "/root/repo/src/ga/pool_io.cpp" "src/CMakeFiles/absqubo.dir/ga/pool_io.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/ga/pool_io.cpp.o.d"
  "/root/repo/src/ga/solution_pool.cpp" "src/CMakeFiles/absqubo.dir/ga/solution_pool.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/ga/solution_pool.cpp.o.d"
  "/root/repo/src/problems/coloring.cpp" "src/CMakeFiles/absqubo.dir/problems/coloring.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/coloring.cpp.o.d"
  "/root/repo/src/problems/graph.cpp" "src/CMakeFiles/absqubo.dir/problems/graph.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/graph.cpp.o.d"
  "/root/repo/src/problems/knapsack.cpp" "src/CMakeFiles/absqubo.dir/problems/knapsack.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/knapsack.cpp.o.d"
  "/root/repo/src/problems/maxcut.cpp" "src/CMakeFiles/absqubo.dir/problems/maxcut.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/maxcut.cpp.o.d"
  "/root/repo/src/problems/partition.cpp" "src/CMakeFiles/absqubo.dir/problems/partition.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/partition.cpp.o.d"
  "/root/repo/src/problems/random.cpp" "src/CMakeFiles/absqubo.dir/problems/random.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/random.cpp.o.d"
  "/root/repo/src/problems/sat.cpp" "src/CMakeFiles/absqubo.dir/problems/sat.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/sat.cpp.o.d"
  "/root/repo/src/problems/tsp.cpp" "src/CMakeFiles/absqubo.dir/problems/tsp.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/tsp.cpp.o.d"
  "/root/repo/src/problems/vertex_cover.cpp" "src/CMakeFiles/absqubo.dir/problems/vertex_cover.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/problems/vertex_cover.cpp.o.d"
  "/root/repo/src/qubo/bit_vector.cpp" "src/CMakeFiles/absqubo.dir/qubo/bit_vector.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/qubo/bit_vector.cpp.o.d"
  "/root/repo/src/qubo/delta_state.cpp" "src/CMakeFiles/absqubo.dir/qubo/delta_state.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/qubo/delta_state.cpp.o.d"
  "/root/repo/src/qubo/energy.cpp" "src/CMakeFiles/absqubo.dir/qubo/energy.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/qubo/energy.cpp.o.d"
  "/root/repo/src/qubo/io.cpp" "src/CMakeFiles/absqubo.dir/qubo/io.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/qubo/io.cpp.o.d"
  "/root/repo/src/qubo/ising.cpp" "src/CMakeFiles/absqubo.dir/qubo/ising.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/qubo/ising.cpp.o.d"
  "/root/repo/src/qubo/weight_matrix.cpp" "src/CMakeFiles/absqubo.dir/qubo/weight_matrix.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/qubo/weight_matrix.cpp.o.d"
  "/root/repo/src/search/algorithms.cpp" "src/CMakeFiles/absqubo.dir/search/algorithms.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/search/algorithms.cpp.o.d"
  "/root/repo/src/search/straight.cpp" "src/CMakeFiles/absqubo.dir/search/straight.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/search/straight.cpp.o.d"
  "/root/repo/src/sim/device_spec.cpp" "src/CMakeFiles/absqubo.dir/sim/device_spec.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/sim/device_spec.cpp.o.d"
  "/root/repo/src/sim/mailbox.cpp" "src/CMakeFiles/absqubo.dir/sim/mailbox.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/sim/mailbox.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/absqubo.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/absqubo.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/absqubo.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
