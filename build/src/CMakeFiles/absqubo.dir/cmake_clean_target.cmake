file(REMOVE_RECURSE
  "libabsqubo.a"
)
