# Empty dependencies file for absqubo.
# This may be replaced when dependencies are built.
